(* Tests for the job-service engine: canonical content-addressed keys
   (renaming invariance, collision freedom), the LRU memo cache,
   request coalescing, load shedding, fair-share priority scheduling,
   warm-vs-cold bit-identity on the golden workloads, the NDJSON codec
   and the demo batch. *)

module AM = Armb_core.Abstracted_model
module Ordering = Armb_core.Ordering
module Barrier = Armb_cpu.Barrier
module Lang = Armb_litmus.Lang
module Cat = Armb_litmus.Catalogue
module Sim = Armb_litmus.Sim_runner
module Fuzz = Armb_litmus.Fuzz
module RC = Armb_platform.Run_config
module P = Armb_platform.Platform
module Rng = Armb_sim.Rng
module Json = Armb_service.Json
module Key = Armb_service.Key
module Job = Armb_service.Job
module Cache = Armb_service.Cache
module Metrics = Armb_service.Metrics
module Engine = Armb_service.Engine
module Codec = Armb_service.Codec
module Serve = Armb_service.Serve

let check = Alcotest.check

let rc ?(seed = 42) ?(trials = 40) () = RC.make ~seed ~trials P.kunpeng916

(* ---------- canonical keys ---------- *)

(* A consistent injective renaming of every shared variable and
   register, with the outcome predicate wrapped so it keeps working
   over the renamed bindings.  Canonicalization must erase it. *)
let rename_test (t : Lang.test) =
  let rv v = "q_" ^ v in
  let rr r = "z" ^ r in
  let rinstr = function
    | Lang.Load { var; reg; acquire; addr_dep } ->
      Lang.Load
        { var = rv var; reg = rr reg; acquire; addr_dep = Option.map rr addr_dep }
    | Lang.Store { var; v; release; addr_dep } ->
      Lang.Store
        {
          var = rv var;
          v = (match v with Lang.Reg r -> Lang.Reg (rr r) | Lang.Const _ as c -> c);
          release;
          addr_dep = Option.map rr addr_dep;
        }
    | Lang.Fence f -> Lang.Fence f
  in
  let rename_key k =
    match String.index_opt k ':' with
    | Some i ->
      let pre = String.sub k 0 i in
      let post = String.sub k (i + 1) (String.length k - i - 1) in
      if pre = "mem" then "mem:" ^ rv post else pre ^ ":" ^ rr post
    | None -> k
  in
  {
    t with
    Lang.name = t.Lang.name ^ "-renamed";
    init = List.map (fun (v, x) -> (rv v, x)) t.Lang.init;
    threads = List.map (List.map rinstr) t.Lang.threads;
    interesting = (fun lookup -> t.Lang.interesting (fun k -> lookup (rename_key k)));
  }

let test_key_rename_invariant () =
  List.iter
    (fun (t : Lang.test) ->
      check Alcotest.string
        (t.Lang.name ^ " canonical form survives renaming")
        (Key.canonical_test t)
        (Key.canonical_test (rename_test t)))
    Cat.all

let test_key_init_presentation () =
  List.iter
    (fun (t : Lang.test) ->
      (* binding order is presentation *)
      check Alcotest.string
        (t.Lang.name ^ " init order irrelevant")
        (Key.canonical_test t)
        (Key.canonical_test { t with Lang.init = List.rev t.Lang.init });
      (* explicit zeros for thread-referenced variables are presentation *)
      match
        List.find_opt
          (fun v -> not (List.mem_assoc v t.Lang.init))
          (Lang.vars t)
      with
      | None -> ()
      | Some v ->
        check Alcotest.string
          (t.Lang.name ^ " explicit zero init irrelevant")
          (Key.canonical_test t)
          (Key.canonical_test { t with Lang.init = (v, 0L) :: t.Lang.init }))
    Cat.all

let test_key_catalogue_distinct () =
  let keys =
    List.map (fun (t : Lang.test) -> (t.Lang.name, Key.digest (Key.canonical_test t))) Cat.all
  in
  List.iteri
    (fun i (n1, k1) ->
      List.iteri
        (fun j (n2, k2) ->
          if i < j then
            check Alcotest.bool
              (Printf.sprintf "%s and %s do not collide" n1 n2)
              false (k1 = k2))
        keys)
    keys

(* Fuzz skeletons: canonicalization is rename-invariant and
   collision-free over a stream of random tests. *)
let prop_fuzz_keys =
  QCheck.Test.make ~name:"random tests: rename-invariant, distinct keys" ~count:40
    QCheck.small_int (fun salt ->
      let rng = Rng.create (1000 + salt) in
      let a = Fuzz.generate rng in
      let b = Fuzz.generate rng in
      Key.canonical_test a = Key.canonical_test (rename_test a)
      && (Key.canonical_test a = Key.canonical_test b
          || Key.digest (Key.canonical_test a) <> Key.digest (Key.canonical_test b)))

let test_job_key_coordinates () =
  let t = List.hd Cat.all in
  let base = { Job.spec = Job.Litmus t; rc = rc (); fault = 0.0 } in
  let key = Job.key base in
  let distinct name j =
    check Alcotest.bool (name ^ " changes the key") false (Job.key j = key)
  in
  distinct "kind" { base with Job.spec = Job.Check t };
  distinct "seed" { base with Job.rc = rc ~seed:43 () };
  distinct "trials" { base with Job.rc = rc ~trials:41 () };
  distinct "fault plan" { base with Job.fault = 0.5 };
  distinct "platform"
    { base with Job.rc = RC.make ~seed:42 ~trials:40 P.kirin970 };
  (* ...but a renamed test is the same job *)
  check Alcotest.string "renamed test, same key" key
    (Job.key { base with Job.spec = Job.Litmus (rename_test t) })

(* ---------- LRU cache ---------- *)

let test_cache_lru () =
  let c = Cache.create ~cap:3 in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  Cache.put c "c" 3;
  check Alcotest.(list string) "MRU order" [ "c"; "b"; "a" ] (Cache.keys_mru c);
  (* find bumps recency: a becomes MRU, so b is evicted next *)
  check Alcotest.(option int) "find a" (Some 1) (Cache.find c "a");
  Cache.put c "d" 4;
  check Alcotest.bool "b evicted" false (Cache.mem c "b");
  check Alcotest.(list string) "order after eviction" [ "d"; "a"; "c" ]
    (Cache.keys_mru c);
  (* mem is pure: c stays LRU and falls out next *)
  check Alcotest.bool "mem c" true (Cache.mem c "c");
  Cache.put c "e" 5;
  check Alcotest.bool "c evicted despite mem" false (Cache.mem c "c");
  (* put on a live key updates in place, no eviction *)
  Cache.put c "a" 10;
  check Alcotest.(option int) "a updated" (Some 10) (Cache.find c "a");
  check Alcotest.int "size capped" 3 (Cache.size c)

(* ---------- engine: coalescing, hits, shedding, scheduling ---------- *)

let job_of_test ?(trials = 6) (t : Lang.test) =
  { Job.spec = Job.Litmus t; rc = rc ~trials (); fault = 0.0 }

let req ?(client = "anon") ?(priority = Engine.Normal) ~id job =
  { Engine.id; client; priority; job }

let origins responses =
  List.map
    (fun (r : Engine.response) ->
      match r.Engine.reply with
      | Engine.Result { origin; _ } -> (r.Engine.id, origin)
      | _ -> (r.Engine.id, Engine.Cold))
    responses

let test_coalescing () =
  let e = Engine.create () in
  let job = job_of_test (List.hd Cat.all) in
  for i = 1 to 5 do
    match Engine.submit e (req ~id:(string_of_int i) job) with
    | None -> ()
    | Some _ -> Alcotest.fail "identical in-flight requests must coalesce"
  done;
  let m = Engine.metrics e in
  check Alcotest.int "one miss" 1 (Metrics.get m "misses");
  check Alcotest.int "four coalesced" 4 (Metrics.get m "coalesced");
  let rs = Engine.drain e in
  check Alcotest.int "five responses" 5 (List.length rs);
  check
    Alcotest.(list (pair string bool))
    "head is the cold computation, the rest coalesced"
    [ ("1", true); ("2", false); ("3", false); ("4", false); ("5", false) ]
    (List.map (fun (id, o) -> (id, o = Engine.Cold)) (origins rs));
  (* the finished result now serves hits without queueing *)
  (match Engine.submit e (req ~id:"6" job) with
  | Some { Engine.reply = Engine.Result { origin = Engine.Hit; wall_us = 0; _ }; _ } ->
    ()
  | _ -> Alcotest.fail "expected an immediate cache hit");
  check Alcotest.int "hit recorded" 1 (Metrics.get (Engine.metrics e) "hits")

let test_no_cache_disables_both () =
  let e = Engine.create ~no_cache:true () in
  let job = job_of_test (List.hd Cat.all) in
  (match Engine.submit e (req ~id:"1" job) with
  | None -> ()
  | Some _ -> Alcotest.fail "first submit should queue");
  (match Engine.submit e (req ~id:"2" job) with
  | None -> ()
  | Some _ -> Alcotest.fail "second submit should queue, not hit");
  let rs = Engine.drain e in
  check Alcotest.int "two distinct computations" 2 (List.length rs);
  List.iter
    (fun (_, o) -> check Alcotest.bool "all cold" true (o = Engine.Cold))
    (origins rs);
  check Alcotest.int "no coalescing" 0 (Metrics.get (Engine.metrics e) "coalesced")

let test_shedding () =
  let e = Engine.create ~queue_bound:2 () in
  let tests = Array.of_list Cat.all in
  let submit i = Engine.submit e (req ~id:(string_of_int i) (job_of_test tests.(i))) in
  (match (submit 0, submit 1) with
  | None, None -> ()
  | _ -> Alcotest.fail "first two distinct jobs fit the queue");
  (match submit 2 with
  | Some { Engine.reply = Engine.Shed { retry_after_ms }; _ } ->
    check Alcotest.bool "retry hint positive" true (retry_after_ms > 0)
  | _ -> Alcotest.fail "third distinct job must shed");
  (* coalescing onto queued work is free: no shed *)
  (match Engine.submit e (req ~id:"x" (job_of_test tests.(0))) with
  | None -> ()
  | Some _ -> Alcotest.fail "coalesced waiter must not shed");
  check Alcotest.int "one shed" 1 (Metrics.get (Engine.metrics e) "shed");
  let rs = Engine.drain e in
  check Alcotest.int "queued work still completes" 3 (List.length rs)

let test_priority_order () =
  let e = Engine.create () in
  let tests = Array.of_list Cat.all in
  ignore (Engine.submit e (req ~id:"lo" ~priority:Engine.Low (job_of_test tests.(0))));
  ignore (Engine.submit e (req ~id:"no" ~priority:Engine.Normal (job_of_test tests.(1))));
  ignore (Engine.submit e (req ~id:"hi" ~priority:Engine.High (job_of_test tests.(2))));
  let ids = List.map (fun (r : Engine.response) -> r.Engine.id) (Engine.drain e) in
  check Alcotest.(list string) "high before normal before low" [ "hi"; "no"; "lo" ] ids

let test_fair_share () =
  let e = Engine.create () in
  let tests = Array.of_list Cat.all in
  ignore (Engine.submit e (req ~id:"a1" ~client:"alice" (job_of_test tests.(0))));
  ignore (Engine.submit e (req ~id:"a2" ~client:"alice" (job_of_test tests.(1))));
  ignore (Engine.submit e (req ~id:"a3" ~client:"alice" (job_of_test tests.(2))));
  ignore (Engine.submit e (req ~id:"b1" ~client:"bob" (job_of_test tests.(3))));
  ignore (Engine.submit e (req ~id:"b2" ~client:"bob" (job_of_test tests.(4))));
  let ids = List.map (fun (r : Engine.response) -> r.Engine.id) (Engine.drain e) in
  check
    Alcotest.(list string)
    "round-robin across clients, FIFO within"
    [ "a1"; "b1"; "a2"; "b2"; "a3" ]
    ids

let test_error_reply () =
  let e = Engine.create () in
  let bad = { Job.spec = Job.Ring { combo = "no such combo"; messages = 10 }; rc = rc (); fault = 0.0 } in
  (match Engine.submit e (req ~id:"1" bad) with
  | Some { Engine.reply = Engine.Error _; _ } -> ()
  | _ -> Alcotest.fail "invalid job spec must fail at submit (key) time");
  check Alcotest.int "failure counted" 1 (Metrics.get (Engine.metrics e) "failed")

(* ---------- warm-vs-cold bit-identity on the golden workloads ---------- *)

(* One job per golden workload family, with the result text computed
   directly against the underlying engines — the same renderings the
   golden-digest suite pins. *)
let golden_jobs () =
  let t = List.find (fun (t : Lang.test) -> t.Lang.name = "MP") Cat.all in
  let rc40 = rc () in
  let litmus_direct =
    let r = Sim.run ~trials:40 ~seed:42 t in
    Printf.sprintf "%s witnessed=%b\n" t.Lang.name r.Sim.interesting_witnessed
    ^ String.concat ""
        (List.map (fun (o, k) -> Printf.sprintf "  %d %s\n" k o) r.Sim.outcomes)
  in
  let check_direct =
    let base, stripped = Sim.check_test ~cfg:rc40.RC.cfg ~trials:12 t in
    Format.asprintf "%a\n" Sim.pp_check_row (Sim.check_row_of t ~base ~stripped)
  in
  let ring_direct =
    let spec =
      {
        (Armb_sync.Spsc_ring.default_spec rc40.RC.cfg ~cores:rc40.RC.cores) with
        Armb_sync.Spsc_ring.messages = 200;
        barriers = Armb_sync.Spsc_ring.combo "DMB ld - DMB st";
      }
    in
    let r = Armb_sync.Spsc_ring.run spec in
    Format.asprintf "%s cycles=%d %a\n" "DMB ld - DMB st" r.Armb_sync.Spsc_ring.cycles
      Armb_mem.Memsys.pp_counters r.Armb_sync.Spsc_ring.lines_touched
  in
  let fuzz_direct =
    Format.asprintf "%a@." Fuzz.pp_report
      (Fuzz.run ~tests:5 ~trials_per_test:40 ~seed:42 ())
  in
  (* one line of the golden fig3 slice, same emit format *)
  let model_direct =
    let spec =
      {
        (AM.default_spec rc40.RC.cfg) with
        AM.cores = rc40.RC.cores;
        mem_ops = AM.Store_store;
        approach = Ordering.Bar (Barrier.Dmb Full);
        location = AM.Loc1;
        nops = 100;
        iters = 300;
      }
    in
    Printf.sprintf "st-st dmb-full-1 (%d,%d) nops=100 cycles=%d\n"
      (fst rc40.RC.cores) (snd rc40.RC.cores) (AM.run_cycles spec)
  in
  [
    ( "model",
      {
        Job.spec =
          Job.Model
            {
              label = "dmb-full-1";
              mem_ops = AM.Store_store;
              approach = Ordering.Bar (Barrier.Dmb Full);
              location = AM.Loc1;
              nops = 100;
              iters = 300;
            };
        rc = rc40;
        fault = 0.0;
      },
      model_direct );
    ("litmus", { Job.spec = Job.Litmus t; rc = rc40; fault = 0.0 }, litmus_direct);
    ( "check",
      { Job.spec = Job.Check t; rc = rc ~trials:12 (); fault = 0.0 },
      check_direct );
    ( "ring",
      {
        Job.spec = Job.Ring { combo = "DMB ld - DMB st"; messages = 200 };
        rc = rc40;
        fault = 0.0;
      },
      ring_direct );
    ( "fuzz",
      { Job.spec = Job.Fuzz { tests = 5 }; rc = rc40; fault = 0.0 },
      fuzz_direct );
  ]

let test_golden_cold_and_warm () =
  let e = Engine.create () in
  List.iter
    (fun (name, job, direct) ->
      (match Engine.submit e (req ~id:name job) with
      | None -> ()
      | Some _ -> Alcotest.fail (name ^ ": cold submit should queue"));
      (match Engine.drain e with
      | [ { Engine.reply = Engine.Result { origin = Engine.Cold; result; _ }; _ } ] ->
        check Alcotest.string (name ^ ": cold text matches direct computation")
          direct result.Job.text
      | _ -> Alcotest.fail (name ^ ": expected one cold response"));
      (* warm hit is byte-identical to the cold run *)
      match Engine.submit e (req ~id:(name ^ "-warm") job) with
      | Some { Engine.reply = Engine.Result { origin = Engine.Hit; result; _ }; _ } ->
        check Alcotest.string (name ^ ": warm hit bit-identical") direct
          result.Job.text
      | _ -> Alcotest.fail (name ^ ": expected a warm hit"))
    (golden_jobs ())

let test_compare_cold_identical () =
  let lines = Serve.demo_requests ~requests:24 ~seed:3 () in
  let c = Serve.compare_cold ~lines () in
  check Alcotest.bool "warm responses byte-identical to cold" true c.Serve.identical;
  check Alcotest.int "same response count" (List.length c.Serve.cold.Serve.responses)
    (List.length c.Serve.warm.Serve.responses);
  check Alcotest.bool "duplicates coalesced on the warm engine" true
    (Metrics.get c.Serve.warm_metrics "coalesced" > 0)

(* ---------- demo batch ---------- *)

let strip_envelope line =
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
    Json.to_string
      (Json.Obj
         (List.filter
            (fun (k, _) -> k <> "id" && k <> "client" && k <> "priority")
            fields))
  | _ -> Alcotest.fail ("demo line is not a JSON object: " ^ line)

let test_demo_batch () =
  let a = Serve.demo_requests ~requests:100 ~seed:7 () in
  let b = Serve.demo_requests ~requests:100 ~seed:7 () in
  check Alcotest.(list string) "deterministic under a fixed seed" a b;
  check Alcotest.int "requested size" 100 (List.length a);
  let uniq = List.sort_uniq compare (List.map strip_envelope a) in
  check Alcotest.bool "at least half the lines are duplicates" true
    (List.length uniq * 2 <= List.length a);
  (* every line decodes *)
  List.iter
    (fun line ->
      match Codec.request_of_line line with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("demo line does not decode: " ^ e))
    a

(* ---------- codec and JSON ---------- *)

let test_codec_roundtrip () =
  let line =
    {|{"id":7,"client":"alice","priority":"high","kind":"litmus","test":"sb","trials":9,"seed":3,"platform":"kirin970","fault":0.25}|}
  in
  match Codec.request_of_line line with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check Alcotest.string "numeric id accepted" "7" r.Engine.id;
    check Alcotest.string "client" "alice" r.Engine.client;
    check Alcotest.bool "priority" true (r.Engine.priority = Engine.High);
    (match r.Engine.job.Job.spec with
    | Job.Litmus t -> check Alcotest.string "case-insensitive test lookup" "SB" t.Lang.name
    | _ -> Alcotest.fail "wrong kind");
    check Alcotest.int "trials" 9 r.Engine.job.Job.rc.RC.trials;
    check Alcotest.int "seed" 3 r.Engine.job.Job.rc.RC.seed;
    check Alcotest.string "platform" "kirin970"
      r.Engine.job.Job.rc.RC.cfg.Armb_cpu.Config.name;
    check (Alcotest.float 1e-9) "fault" 0.25 r.Engine.job.Job.fault

let test_codec_errors () =
  let bad what line =
    match Codec.request_of_line line with
    | Ok _ -> Alcotest.fail (what ^ " should be rejected")
    | Error _ -> ()
  in
  bad "missing kind" {|{"test":"SB"}|};
  bad "unknown kind" {|{"kind":"nope"}|};
  bad "unknown test" {|{"kind":"litmus","test":"NOPE"}|};
  bad "fault out of range" {|{"kind":"litmus","test":"SB","fault":1.5}|};
  bad "bad priority" {|{"kind":"litmus","test":"SB","priority":"urgent"}|};
  bad "bad platform" {|{"kind":"litmus","test":"SB","platform":"m1"}|};
  bad "not json" {|{"kind":|}

let test_response_line_parses () =
  let e = Engine.create () in
  ignore (Engine.submit e (req ~id:"1" (job_of_test (List.hd Cat.all))));
  match Engine.drain e with
  | [ r ] -> (
    match Json.of_string (Codec.response_to_line r) with
    | Ok j ->
      check Alcotest.(option string) "status" (Some "ok") (Json.mem_str "status" j);
      check Alcotest.(option string) "origin" (Some "cold") (Json.mem_str "origin" j);
      check Alcotest.bool "has result text" true (Json.mem_str "result" j <> None)
    | Error e -> Alcotest.fail ("response line does not parse: " ^ e))
  | _ -> Alcotest.fail "expected one response"

let test_json_parser () =
  let roundtrip s =
    match Json.of_string s with
    | Ok j -> Json.to_string j
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  check Alcotest.string "nested"
    {|{"a":[1,2.5,true,null],"b":{"c":"x"}}|}
    (roundtrip {| { "a" : [ 1 , 2.5 , true , null ] , "b" : { "c" : "x" } } |});
  check Alcotest.string "escapes" {|{"s":"a\"b\\c\nd"}|}
    (roundtrip {|{"s":"a\"b\\c\nd"}|});
  check Alcotest.string "unicode escape decodes" {|{"s":"é"}|}
    (roundtrip {|{"s":"é"}|});
  (match Json.of_string {|{"a":1} trailing|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must be rejected");
  match Json.of_string {|[1,|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input must be rejected"

let test_run_config_kv () =
  let r = RC.make ~cores:(1, 5) ~seed:9 ~trials:77 P.kirin960 in
  match RC.of_kv (RC.to_kv r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    check Alcotest.string "platform survives" r.RC.cfg.Armb_cpu.Config.name
      r'.RC.cfg.Armb_cpu.Config.name;
    check Alcotest.(pair int int) "cores survive" r.RC.cores r'.RC.cores;
    check Alcotest.int "seed survives" r.RC.seed r'.RC.seed;
    check Alcotest.int "trials survive" r.RC.trials r'.RC.trials;
    (* switching platform without explicit cores re-derives the default
       far-half placement for the new machine *)
    match RC.of_kv ~defaults:r [ ("platform", "raspberrypi4") ] with
    | Error e -> Alcotest.fail e
    | Ok r2 ->
      check Alcotest.(pair int int) "cores re-derived"
        (RC.default_cores (Option.get (P.by_name "raspberrypi4")))
        r2.RC.cores

(* ---------- scalability regressions ---------- *)

module Clock = Armb_service.Clock
module Shard = Armb_service.Shard

(* Client churn must not grow the scheduler: a drained lane retires, so
   the lane index tracks only clients with work in flight.  The old
   list-backed registration kept every client ever seen (and each
   registration was a full-list append). *)
let test_lane_churn () =
  let e = Engine.create ~no_cache:true () in
  let job = job_of_test ~trials:2 (List.hd Cat.all) in
  let wave tag =
    for i = 1 to 64 do
      ignore
        (Engine.submit e
           (req ~id:(Printf.sprintf "%s-%d" tag i)
              ~client:(Printf.sprintf "client-%s-%03d" tag i) job))
    done;
    check Alcotest.int (tag ^ ": one lane per active client") 64 (Engine.live_lanes e);
    check Alcotest.int
      (tag ^ ": responses")
      64
      (List.length (Engine.drain e));
    check Alcotest.int (tag ^ ": drained lanes retire") 0 (Engine.live_lanes e)
  in
  (* three waves of disjoint clients: 192 clients total, never more
     than 64 live lanes *)
  wave "a";
  wave "b";
  wave "c"

(* Absorbing a duplicate is O(1) and order-preserving: the first
   arrival computes (Cold), every later arrival coalesces, and the
   drain answers them in arrival order.  The old [waiters @ [req]]
   append made exactly this pattern quadratic. *)
let test_coalesce_order_large () =
  let e = Engine.create () in
  let job = job_of_test (List.hd Cat.all) in
  let n = 500 in
  for i = 1 to n do
    match Engine.submit e (req ~id:(string_of_int i) job) with
    | None -> ()
    | Some _ -> Alcotest.fail "duplicates of a queued job must coalesce"
  done;
  let rs = Engine.drain e in
  check Alcotest.int "one response per request" n (List.length rs);
  List.iteri
    (fun i (r : Engine.response) ->
      check Alcotest.string "arrival order preserved" (string_of_int (i + 1))
        r.Engine.id;
      match r.Engine.reply with
      | Engine.Result { origin; _ } ->
        check Alcotest.bool "first cold, rest coalesced" true
          (origin = if i = 0 then Engine.Cold else Engine.Coalesced)
      | _ -> Alcotest.fail "expected ok responses")
    rs;
  check Alcotest.int "coalesced count" (n - 1)
    (Metrics.get (Engine.metrics e) "coalesced")

(* The monotonized clock clamps a time source that steps backwards
   (NTP, VM migration), so measured intervals are never negative. *)
let test_clock_monotonic () =
  let steps = ref [ 100.0; 200.0; 50.0; 60.0; 300.0 ] in
  let source () =
    match !steps with
    | [] -> 300.0
    | x :: rest ->
      steps := rest;
      x
  in
  let c = Clock.create ~source () in
  let t1 = Clock.now_us c in
  let t2 = Clock.now_us c in
  check Alcotest.bool "advances" true (t2 > t1);
  let t3 = Clock.now_us c in
  check Alcotest.int "backwards step clamps to the last reading" t2 t3;
  check Alcotest.int "still clamped" t2 (Clock.now_us c);
  check Alcotest.bool "resumes once the source catches up" true (Clock.now_us c > t2);
  check Alcotest.bool "elapsed never negative" true
    (Clock.elapsed_us c ~since:max_int >= 0)

let test_engine_wall_us_nonnegative () =
  (* a source that jumps far backwards mid-computation *)
  let calls = ref 0 in
  let source () =
    incr calls;
    if !calls = 1 then 1000.0 else 1.0
  in
  let e = Engine.create ~clock:(Clock.create ~source ()) () in
  ignore (Engine.submit e (req ~id:"1" (job_of_test (List.hd Cat.all))));
  match Engine.drain e with
  | [ { Engine.reply = Engine.Result { wall_us; _ }; _ } ] ->
    check Alcotest.bool "wall_us clamped >= 0" true (wall_us >= 0)
  | _ -> Alcotest.fail "expected one response"

(* Response-count conservation: work the engine held from outside the
   batch surfaces as an error-tagged orphan row instead of being
   silently dropped, and every batch slot still gets its own row. *)
let test_batch_conservation () =
  let e = Engine.create () in
  let tests = Array.of_list Cat.all in
  ignore (Engine.submit e (req ~id:"outsider" (job_of_test tests.(5))));
  let lines =
    [
      {|{"id":"a","kind":"litmus","test":"MP","trials":6,"seed":42}|};
      "";
      {|{"id":"b","kind":"litmus","test":"SB","trials":6,"seed":42}|};
    ]
  in
  let b = Serve.run_batch e ~lines in
  check Alcotest.int "2 slots + 1 orphan" 3 (List.length b.Serve.responses);
  (match b.Serve.responses with
  | [ ra; rb; orphan ] ->
    check Alcotest.string "slot order" "a" ra.Engine.id;
    check Alcotest.string "slot order" "b" rb.Engine.id;
    check Alcotest.string "orphan keeps its id" "outsider" orphan.Engine.id;
    (match orphan.Engine.reply with
    | Engine.Error m ->
      check Alcotest.bool "orphan tagged" true
        (String.length m >= 8 && String.sub m 0 8 = "orphaned")
    | _ -> Alcotest.fail "orphan must be an error row")
  | _ -> Alcotest.fail "unexpected batch shape");
  (* an engine that starts empty conserves exactly *)
  let b2 = Serve.run_batch (Engine.create ()) ~lines in
  check Alcotest.int "fresh engine: one row per non-blank line" 2
    (List.length b2.Serve.responses)

(* ---------- JSON grammar ---------- *)

let test_json_number_grammar () =
  let ok what s expected =
    match Json.of_string s with
    | Ok j -> check Alcotest.string what expected (Json.to_string j)
    | Error e -> Alcotest.fail (what ^ ": " ^ e)
  in
  let bad what s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (what ^ " must be rejected")
    | Error _ -> ()
  in
  ok "zero" "0" "0";
  ok "negative zero" "-0" "0";
  ok "int" "-127" "-127";
  ok "fraction" "0.5" "0.5";
  ok "exponent" "1e2" "100.0";
  ok "signed exponent" "1.5E+2" "150.0";
  ok "big magnitude falls back to float" "123456789123456789123456789"
    "1.23457e+26";
  bad "leading plus" "+5";
  bad "leading zero" "01";
  bad "hex" "0x10";
  bad "underscores" "1_000";
  bad "bare dot" "5.";
  bad "leading dot" ".5";
  bad "dangling exponent" "1e";
  bad "double minus" "--1";
  bad "minus alone" "-";
  bad "inf" "inf";
  bad "nan" "nan"

let test_json_surrogate_pairs () =
  (* escape pairs assembled by concatenation so the pair only exists in
     the parsed JSON, never in this source file's encoding *)
  (match Json.of_string ({|"\ud83d|} ^ {|\ude00"|}) with
  | Ok (Json.Str s) ->
    check Alcotest.string "surrogate pair combines into one code point"
      "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e);
  (match Json.of_string ({|"\ud834|} ^ {|\udd1e"|}) with
  | Ok (Json.Str s) ->
    check Alcotest.string "U+1D11E" "\xf0\x9d\x84\x9e" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e);
  let bad what s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (what ^ " must be rejected")
    | Error _ -> ()
  in
  bad "lone high surrogate" {|"\ud83d"|};
  bad "lone low surrogate" {|"\ude00"|};
  bad "high followed by non-surrogate" {|"\ud83dA"|};
  bad "high at end of escape run" {|"\ud83dx"|};
  (* basic-plane escapes still decode *)
  match Json.of_string "\"\\u00e9\"" with
  | Ok (Json.Str s) -> check Alcotest.string "BMP escape" "\xc3\xa9" s
  | _ -> Alcotest.fail "BMP escape must decode"

(* Printable round-trip property over random JSON trees (floats
   excluded: their %.6g rendering is lossy by design). *)
let prop_json_roundtrip =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.return Json.Null;
        Gen.map (fun b -> Json.Bool b) Gen.bool;
        Gen.map (fun i -> Json.Int i) Gen.int;
        Gen.map (fun s -> Json.Str s) Gen.string_printable;
      ]
  in
  let tree =
    Gen.sized (fun n ->
        Gen.fix
          (fun self n ->
            if n <= 1 then leaf
            else
              Gen.oneof
                [
                  leaf;
                  Gen.map (fun xs -> Json.List xs)
                    (Gen.list_size (Gen.int_bound 4) (self (n / 2)));
                  Gen.map (fun kvs -> Json.Obj kvs)
                    (Gen.list_size (Gen.int_bound 4)
                       (Gen.pair Gen.string_printable (self (n / 2))));
                ])
          n)
  in
  Test.make ~name:"to_string/of_string round trip" ~count:200 (make tree)
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> Json.to_string j = Json.to_string j'
      | Error _ -> false)

(* ---------- sharded service ---------- *)

let test_shard_routing_stable_and_balanced () =
  let a = Shard.create ~domains:4 () in
  let b = Shard.create ~domains:4 () in
  let counts = Array.make 4 0 in
  for i = 0 to 9999 do
    (* routing inputs are Hashtbl.hash outputs (Job.route_hash), so the
       balance claim is over hash-distributed points, not raw ints *)
    let h = Hashtbl.hash ("route", i) in
    let s = Shard.shard_of_hash a h in
    check Alcotest.int "same ring for the same domain count" s
      (Shard.shard_of_hash b h);
    check Alcotest.bool "in range" true (s >= 0 && s < 4);
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun i c ->
      check Alcotest.bool
        (Printf.sprintf "shard %d owns a non-trivial share (%d)" i c)
        true
        (c > 500))
    counts;
  (* identical requests land on identical shards *)
  (match Codec.request_of_line {|{"kind":"litmus","test":"MP","trials":6}|} with
  | Ok r ->
    check Alcotest.int "request routing deterministic" (Shard.shard_of a r)
      (Shard.shard_of a r)
  | Error e -> Alcotest.fail e);
  ignore (Shard.shutdown a : Engine.response list);
  ignore (Shard.shutdown b : Engine.response list)

let test_shard_identical_to_single () =
  let lines = Serve.demo_requests ~requests:60 ~seed:3 () in
  let c = Shard.compare_single ~domains:3 ~lines () in
  check Alcotest.bool "sharded responses signature-identical to one domain" true
    c.Shard.identical;
  check Alcotest.bool "duplicates coalesced on their shards" true
    (c.Shard.coalesced > 0);
  check Alcotest.int "same coalesce count as one domain"
    (Metrics.get c.Shard.single_metrics "coalesced")
    c.Shard.coalesced

let test_shard_global_queue_bound () =
  (* 60 requests over ~24 distinct jobs against a global bound of 4:
     the router must shed in input order exactly where one engine
     would, not per shard *)
  let lines = Serve.demo_requests ~requests:60 ~seed:3 () in
  let c = Shard.compare_single ~domains:3 ~queue_bound:4 ~lines () in
  check Alcotest.bool "shed pattern identical to one domain" true c.Shard.identical;
  check Alcotest.bool "something was shed" true
    (Metrics.get c.Shard.single_metrics "shed" > 0)

let test_shard_zipf_deterministic_and_skewed () =
  let a = Serve.zipf_requests ~requests:400 ~seed:5 () in
  let b = Serve.zipf_requests ~requests:400 ~seed:5 () in
  check Alcotest.(list string) "deterministic under a fixed seed" a b;
  check Alcotest.bool "seed changes the batch" true
    (a <> Serve.zipf_requests ~requests:400 ~seed:6 ());
  check Alcotest.int "requested size" 400 (List.length a);
  (* Zipf head: the hottest job dominates far beyond the uniform 1/40 *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun line ->
      let k = strip_envelope line in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    a;
  let top = Hashtbl.fold (fun _ c acc -> max c acc) tbl 0 in
  check Alcotest.bool
    (Printf.sprintf "hottest job dominates (%d/400)" top)
    true (top >= 40);
  List.iter
    (fun line ->
      match Codec.request_of_line line with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("zipf line does not decode: " ^ e))
    a

let () =
  Alcotest.run "service"
    [
      ( "keys",
        [
          Alcotest.test_case "catalogue renaming invariance" `Quick
            test_key_rename_invariant;
          Alcotest.test_case "init presentation invariance" `Quick
            test_key_init_presentation;
          Alcotest.test_case "catalogue keys distinct" `Quick
            test_key_catalogue_distinct;
          QCheck_alcotest.to_alcotest prop_fuzz_keys;
          Alcotest.test_case "run coordinates keyed" `Quick test_job_key_coordinates;
        ] );
      ( "cache",
        [ Alcotest.test_case "LRU eviction and recency" `Quick test_cache_lru ] );
      ( "engine",
        [
          Alcotest.test_case "coalescing then hit" `Quick test_coalescing;
          Alcotest.test_case "no-cache disables memo and coalescing" `Quick
            test_no_cache_disables_both;
          Alcotest.test_case "load shedding" `Quick test_shedding;
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "fair share across clients" `Quick test_fair_share;
          Alcotest.test_case "invalid spec errors" `Quick test_error_reply;
          Alcotest.test_case "lane churn bounded, drained lanes retire" `Quick
            test_lane_churn;
          Alcotest.test_case "hot-key coalescing order at scale" `Quick
            test_coalesce_order_large;
          Alcotest.test_case "clock clamps backwards steps" `Quick
            test_clock_monotonic;
          Alcotest.test_case "wall_us non-negative under clock rollback" `Quick
            test_engine_wall_us_nonnegative;
          Alcotest.test_case "batch response-count conservation" `Quick
            test_batch_conservation;
        ] );
      ( "shard",
        [
          Alcotest.test_case "routing stable and balanced" `Slow
            test_shard_routing_stable_and_balanced;
          Alcotest.test_case "sharded identical to single-domain" `Slow
            test_shard_identical_to_single;
          Alcotest.test_case "global queue bound" `Slow test_shard_global_queue_bound;
          Alcotest.test_case "zipf traffic deterministic and skewed" `Quick
            test_shard_zipf_deterministic_and_skewed;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "golden workloads cold and warm" `Quick
            test_golden_cold_and_warm;
          Alcotest.test_case "compare_cold identical" `Quick
            test_compare_cold_identical;
          Alcotest.test_case "demo batch" `Quick test_demo_batch;
        ] );
      ( "codec",
        [
          Alcotest.test_case "request round trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "request errors" `Quick test_codec_errors;
          Alcotest.test_case "response line parses" `Quick test_response_line_parses;
          Alcotest.test_case "json parser" `Quick test_json_parser;
          Alcotest.test_case "json number grammar" `Quick test_json_number_grammar;
          Alcotest.test_case "json surrogate pairs" `Quick test_json_surrogate_pairs;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          Alcotest.test_case "run_config kv round trip" `Quick test_run_config_kv;
        ] );
    ]
