(* CFG IR + fence optimizer tests: structure toolkit (RPO/dominators)
   on known shapes, lowering round-trips, bounded-unroll semantics
   against the enumerator, the mutate wrapper regression, and the
   QCheck property that optimizing a random loop-free CFG preserves the
   WMM-reachable outcome set bit-for-bit. *)

module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg
module Catalogue = Armb_litmus.Catalogue
module Enumerate = Armb_litmus.Enumerate
module Mutate = Armb_litmus.Mutate
module Fuzz = Armb_litmus.Fuzz
module Rng = Armb_sim.Rng
module Analysis = Armb_opt.Analysis
module Passes = Armb_opt.Passes
module Verify = Armb_opt.Verify
module Optimizer = Armb_opt.Optimizer
module Opt_soak = Armb_opt.Soak

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- fixture CFGs ---------- *)

let diamond =
  Cfg.cfg
    [
      Cfg.blk "b0" ~term:(Cfg.branch "r1" ~nonzero:"then" ~zero:"else") [ Lang.ld "x" "r1" ];
      Cfg.blk "then" ~term:(Cfg.goto "join") [ Lang.st "y" 1L ];
      Cfg.blk "else" ~term:(Cfg.goto "join") [];
      Cfg.blk "join" [ Lang.ld "y" "r2" ];
    ]

let loop =
  Cfg.cfg ~entry:"head"
    [
      Cfg.blk "head" ~term:(Cfg.branch "r1" ~nonzero:"exit" ~zero:"head") [ Lang.ld "f" "r1" ];
      Cfg.blk "exit" [ Lang.ld "d" "r2" ];
    ]

let with_unreachable =
  Cfg.cfg
    [
      Cfg.blk "b0" ~term:(Cfg.goto "b1") [ Lang.st "x" 1L ];
      Cfg.blk "b1" [ Lang.ld "x" "r1" ];
      Cfg.blk "island" [ Lang.Fence Lang.F_dsb ];
    ]

(* ---------- structure ---------- *)

let test_validate () =
  List.iter
    (fun (p : Cfg.program) -> checkb ("validate " ^ p.Cfg.name) true (Cfg.validate p = Ok ()))
    Catalogue.cfg_all;
  (match
     Cfg.validate
       {
         (Catalogue.spin_mp) with
         Cfg.threads = [ { Cfg.entry = "nope"; blocks = [ Cfg.blk "b0" [] ] } ];
       }
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad entry accepted");
  checkb "loop detected" true (Cfg.has_loop loop);
  checkb "diamond is loop-free" false (Cfg.has_loop diamond);
  checkb "unreachable island ignored" false (Cfg.has_loop with_unreachable)

let test_reachable_blocks () =
  let labels g = List.map (fun (b : Cfg.block) -> b.Cfg.label) (Cfg.reachable_blocks g) in
  check (Alcotest.list Alcotest.string) "diamond dfs order"
    [ "b0"; "then"; "join"; "else" ] (labels diamond);
  check (Alcotest.list Alcotest.string) "island not reachable" [ "b0"; "b1" ]
    (labels with_unreachable);
  checki "island fence not counted" 0
    (Cfg.fence_count
       {
         (Catalogue.spin_mp) with
         Cfg.threads = [ with_unreachable ];
         init = [ ("x", 0L) ];
       })

(* ---------- lowering ---------- *)

let test_round_trip () =
  List.iter
    (fun (t : Lang.test) ->
      match Cfg.lower (Cfg.of_test t) with
      | None -> Alcotest.fail ("lower(of_test " ^ t.Lang.name ^ ") = None")
      | Some t' ->
        checkb ("round trip " ^ t.Lang.name) true
          (t'.Lang.threads = t.Lang.threads && t'.Lang.init = t.Lang.init
         && t'.Lang.name = t.Lang.name))
    Catalogue.all

let test_straight_line () =
  (* goto chains flatten; branches and loops don't *)
  let chain =
    Cfg.cfg
      [
        Cfg.blk "b0" ~term:(Cfg.goto "b1") [ Lang.st "x" 1L ];
        Cfg.blk "b1" [ Lang.ld "x" "r1" ];
      ]
  in
  (match Cfg.straight_line chain with
  | Some [ Lang.Store _; Lang.Load _ ] -> ()
  | _ -> Alcotest.fail "chain should flatten to store;load");
  checkb "diamond not straight-line" true (Cfg.straight_line diamond = None);
  checkb "loop not straight-line" true (Cfg.straight_line loop = None)

(* ---------- bounded-unroll semantics ---------- *)

(* On a lifted straight-line test the slice machinery must agree with
   the enumerator exactly. *)
let test_reachable_identity () =
  List.iter
    (fun (t : Lang.test) ->
      let direct = Enumerate.enumerate Enumerate.Wmm t in
      let via_cfg = Cfg.reachable Enumerate.Wmm (Cfg.of_test t) in
      check (Alcotest.list (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64)))
        ("reachable = enumerate for " ^ t.Lang.name)
        direct via_cfg)
    Catalogue.all

let test_cfg_expectations () =
  List.iter
    (fun (p : Cfg.program) ->
      let ok, detail = Cfg.verify_expectations p in
      checkb (p.Cfg.name ^ ": " ^ detail) true ok)
    Catalogue.cfg_all

let test_unroll_monotone () =
  (* more unrolling can only add reachable outcomes *)
  let subset a b = List.for_all (fun o -> List.mem o b) a in
  List.iter
    (fun (p : Cfg.program) ->
      let r1 = Cfg.reachable ~unroll:1 Enumerate.Wmm p in
      let r3 = Cfg.reachable ~unroll:3 Enumerate.Wmm p in
      checkb (p.Cfg.name ^ ": unroll monotone") true (subset r1 r3))
    Catalogue.cfg_all

let test_slices_shape () =
  (* the spin consumer has one path per extra poll iteration *)
  let paths = Cfg.thread_paths ~unroll:3 loop in
  checki "3 exit paths at unroll 3" 3 (List.length paths);
  List.iteri
    (fun i (p : Cfg.path) ->
      checki (Printf.sprintf "path %d constraint count" i) (i + 1) (List.length p.Cfg.constraints))
    paths;
  (* versioned names: the 2nd load of f becomes f's reg r1#2 *)
  match List.nth_opt paths 1 with
  | Some p ->
    checkb "second iteration renames r1" true
      (List.exists
         (function Lang.Load { reg = "r1#2"; _ } -> true | _ -> false)
         p.Cfg.instrs);
    checkb "last_version points at r1#2" true
      (List.assoc_opt "r1" p.Cfg.last_version = Some "r1#2")
  | None -> Alcotest.fail "missing path"

let test_cfg_slice_tests () =
  let slices = Catalogue.cfg_slices () in
  checkb "slices exist" true (List.length slices > List.length Catalogue.cfg_all);
  List.iter
    (fun (t : Lang.test) ->
      let ok, detail = Enumerate.verify_expectations t in
      checkb (t.Lang.name ^ ": " ^ detail) true ok)
    slices

(* ---------- mutate wrappers ---------- *)

let test_mutate_wrappers () =
  (* flat edits behave exactly as the historical direct implementation *)
  let t = List.find (fun (t : Lang.test) -> t.Lang.name = "MP") Catalogue.all in
  let fenced = Mutate.insert_fence ~thread:0 ~pos:1 Lang.F_dmb_st t in
  (match fenced.Lang.threads with
  | [ [ Lang.Store _; Lang.Fence Lang.F_dmb_st; Lang.Store _ ]; _ ] -> ()
  | _ -> Alcotest.fail "insert_fence wrapper misplaced the fence");
  let beyond = Mutate.insert_fence ~thread:0 ~pos:99 Lang.F_dsb t in
  (match List.hd beyond.Lang.threads with
  | [ Lang.Store _; Lang.Store _; Lang.Fence Lang.F_dsb ] -> ()
  | _ -> Alcotest.fail "insert past end should append");
  let acq = Mutate.set_acquire ~thread:1 ~idx:0 t in
  (match acq.Lang.threads with
  | [ _; Lang.Load { acquire = true; _ } :: _ ] -> ()
  | _ -> Alcotest.fail "set_acquire wrapper failed");
  let out_of_range = Mutate.set_release ~thread:1 ~idx:42 t in
  checkb "out-of-range edit is identity" true (out_of_range.Lang.threads = t.Lang.threads);
  checkb "name preserved" true (fenced.Lang.name = t.Lang.name);
  (* interesting predicate survives the lift/lower round trip *)
  checkb "predicate survives" true
    (t.Lang.interesting (fun k -> if k = "1:r1" then 1L else 0L)
    = fenced.Lang.interesting (fun k -> if k = "1:r1" then 1L else 0L))

let test_mutate_cfg_edits () =
  let p = Catalogue.spin_mp in
  let edited = Mutate.insert_fence_cfg ~thread:1 ~label:"done" ~pos:0 Lang.F_dmb_ld p in
  checki "fence added" (Cfg.fence_count p + 1) (Cfg.fence_count edited);
  (* the edited program is exactly spin_mp_dmb's ordering: forbidden *)
  checkb "edit forbids the weak outcome" false (Cfg.allows Enumerate.Wmm edited);
  checkb "original allows it" true (Cfg.allows Enumerate.Wmm p);
  let unknown = Mutate.insert_fence_cfg ~thread:1 ~label:"nope" ~pos:0 Lang.F_dsb p in
  checki "unknown label is identity" (Cfg.fence_count p) (Cfg.fence_count unknown);
  let acq = Mutate.set_acquire_cfg ~thread:1 ~label:"poll" ~idx:0 p in
  checkb "acquire in the loop forbids it" false (Cfg.allows Enumerate.Wmm acq)

(* ---------- analysis ---------- *)

let test_rpo_dominators () =
  (* diamond: b0 dominates all; join dominated by b0 only *)
  check (Alcotest.list Alcotest.string) "diamond rpo head" [ "b0" ]
    [ List.hd (Analysis.rpo diamond) ];
  checkb "b0 dominates join" true (Analysis.dominates diamond "b0" "join");
  checkb "then does not dominate join" false (Analysis.dominates diamond "then" "join");
  checkb "else does not dominate join" false (Analysis.dominates diamond "else" "join");
  check (Alcotest.option Alcotest.string) "idom(join) = b0" (Some "b0")
    (Analysis.idom diamond "join");
  check (Alcotest.option Alcotest.string) "idom(entry) = entry" (Some "b0")
    (Analysis.idom diamond "b0");
  (* loop: the self back-edge head -> head *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "loop back edge" [ ("head", "head") ] (Analysis.back_edges loop);
  checkb "no back edges in diamond" true (Analysis.back_edges diamond = []);
  (* unreachable blocks are invisible to the toolkit *)
  check (Alcotest.list Alcotest.string) "island listed" [ "island" ]
    (Analysis.unreachable with_unreachable);
  check (Alcotest.option Alcotest.string) "idom(island) = None" None
    (Analysis.idom with_unreachable "island")

let test_escape () =
  let esc = Analysis.escape loop in
  (* the loop head may re-enter itself: its own loads flow around *)
  checkb "head sees loads before (around the back edge)" true
    (esc.Analysis.before_in "head").Analysis.loads;
  checkb "head sees no stores before" false (esc.Analysis.before_in "head").Analysis.stores;
  checkb "loads still follow the head" true (esc.Analysis.after_out "head").Analysis.loads;
  checkb "nothing follows the exit" true
    (esc.Analysis.after_out "exit" = Analysis.no_kinds);
  let esc_d = Analysis.escape diamond in
  checkb "join: stores may precede (then arm)" true
    (esc_d.Analysis.before_in "join").Analysis.stores;
  checkb "entry: nothing precedes" true
    (esc_d.Analysis.before_in "b0" = Analysis.no_kinds)

(* ---------- passes ---------- *)

let fences_of_thread (g : Cfg.thread_cfg) =
  List.concat_map
    (fun (b : Cfg.block) ->
      List.filter_map (function Lang.Fence f -> Some f | _ -> None) b.Cfg.body)
    (Cfg.reachable_blocks g)

let test_merge_straight_line () =
  (* over-fenced MP: leading/trailing fulls die, gap fulls weaken *)
  let p = Passes.over_fence (Cfg.of_test Catalogue.mp) in
  let q, stats = Passes.merge p in
  checki "producer+consumer keep one fence each" 2 (Cfg.fence_count q);
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "weakened to dmb.st / dmb.ld"
    [ [ "dmb st" ]; [ "dmb ld" ] ]
    (List.map (fun g -> List.map Lang.fence_to_string (fences_of_thread g)) q.Cfg.threads);
  checkb "dead fences counted" true (stats.Passes.dead >= 4);
  checkb "sound" true (Verify.equivalent p q).Verify.sound

let test_merge_adjacent () =
  (* adjacent fences merge into one *)
  let p =
    {
      (Cfg.of_test Catalogue.sb) with
      Cfg.name = "SB+doubled";
      threads =
        [
          Cfg.of_thread
            [ Lang.st "x" 1L; Lang.fence Lang.F_dmb_full; Lang.fence Lang.F_dmb_full; Lang.ld "y" "r1" ];
          Cfg.of_thread [ Lang.st "y" 1L; Lang.fence Lang.F_dmb_full; Lang.ld "x" "r1" ];
        ];
    }
  in
  let q, stats = Passes.merge p in
  checki "three fences become two" 2 (Cfg.fence_count q);
  checki "one merge recorded" 1 stats.Passes.merged;
  checkb "sound" true (Verify.equivalent p q).Verify.sound;
  (* the surviving fences stay full: both sides of SB need St->Ld *)
  checkb "kept at full strength" true
    (List.for_all
       (fun g -> List.for_all (fun f -> f = Lang.F_dmb_full) (fences_of_thread g))
       q.Cfg.threads)

let test_merge_dsb_pinned () =
  let p =
    {
      (Cfg.of_test Catalogue.mp) with
      Cfg.name = "MP+dsb";
      threads =
        [
          Cfg.of_thread [ Lang.st "data" 23L; Lang.fence Lang.F_dsb; Lang.st "flag" 1L ];
          Cfg.of_thread [ Lang.ld "flag" "r1"; Lang.fence Lang.F_dmb_full; Lang.ld "data" "r2" ];
        ];
    }
  in
  let q, _ = Passes.merge p in
  checkb "dsb survives untouched" true
    (List.mem Lang.F_dsb (fences_of_thread (List.hd q.Cfg.threads)))

let test_merge_loop () =
  (* the over-strong loopy catalogue test: full -> st / ld *)
  let q, _ = Passes.merge Catalogue.spin_mp_full in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "loop fence weakened"
    [ [ "dmb st" ]; [ "dmb ld" ] ]
    (List.map (fun g -> List.map Lang.fence_to_string (fences_of_thread g)) q.Cfg.threads);
  checkb "still forbids the stale read" false (Cfg.allows Enumerate.Wmm q);
  checkb "sound" true (Verify.equivalent Catalogue.spin_mp_full q).Verify.sound

let test_single_bb_vs_linear () =
  (* a fence that only a cross-block scan can sink/merge: chain blocks *)
  let chain =
    {
      (Cfg.of_test Catalogue.mp) with
      Cfg.name = "MP+chain";
      threads =
        [
          Cfg.cfg
            [
              Cfg.blk "b0" ~term:(Cfg.goto "b1")
                [ Lang.st "data" 23L; Lang.fence Lang.F_dmb_full ];
              Cfg.blk "b1" [ Lang.st "flag" 1L ];
            ];
          Cfg.of_thread [ Lang.ld "flag" "r1"; Lang.ld "data" "r2" ];
        ];
    }
  in
  let q_single, _ = Passes.merge ~cross_block:false chain in
  let q_linear, _ = Passes.merge ~cross_block:true chain in
  (* single-bb must keep the fence in b0; linear scan sinks it to b1
     where it materializes before the flag store, weakened *)
  checkb "single-bb: fence stays in b0" true
    (List.exists
       (function Lang.Fence _ -> true | _ -> false)
       (Cfg.block_exn (List.hd q_single.Cfg.threads) "b0").Cfg.body);
  checkb "linear: b0 fence gone" false
    (List.exists
       (function Lang.Fence _ -> true | _ -> false)
       (Cfg.block_exn (List.hd q_linear.Cfg.threads) "b0").Cfg.body);
  check (Alcotest.list Alcotest.string) "linear: weakened fence lands in b1"
    [ "dmb st" ]
    (List.filter_map
       (function Lang.Fence f -> Some (Lang.fence_to_string f) | _ -> None)
       (Cfg.block_exn (List.hd q_linear.Cfg.threads) "b1").Cfg.body);
  checkb "both sound" true
    ((Verify.equivalent chain q_single).Verify.sound
    && (Verify.equivalent chain q_linear).Verify.sound)

(* ---------- optimizer ---------- *)

let test_second_chance_acq_rel () =
  (* every fence of over-fenced MP+stlr+ldar is subsumed by the
     acquire/release attributes; only the oracle can see that *)
  let p = Passes.over_fence (Cfg.of_test Catalogue.mp_acq_rel) in
  let r = Optimizer.optimize ~algorithm:Optimizer.Second_chance ~cost:false p in
  checkb "sound" true r.Optimizer.verdict.Verify.sound;
  checki "all fences gone" 0 r.Optimizer.output_fences;
  let r_linear = Optimizer.optimize ~algorithm:Optimizer.Linear_scan ~cost:false p in
  checkb "linear scan alone keeps some fence" true (r_linear.Optimizer.output_fences > 0)

let test_optimize_catalogue_sound () =
  (* every sweep input optimizes soundly and never gains a fence;
     costing off to keep the suite fast (the CLI/CI run prices it) *)
  let results = Optimizer.sweep ~algorithm:Optimizer.Second_chance ~cost:false () in
  List.iter
    (fun (r : Optimizer.result) ->
      checkb
        (Printf.sprintf "%s sound (%s)" r.Optimizer.name r.Optimizer.verdict.Verify.detail)
        true r.Optimizer.verdict.Verify.sound;
      checkb
        (Printf.sprintf "%s fence count monotone" r.Optimizer.name)
        true
        (r.Optimizer.output_fences <= r.Optimizer.input_fences))
    results;
  let improved = List.filter Optimizer.improved results in
  checkb
    (Printf.sprintf "at least 3 over-fenced inputs improved (%d)" (List.length improved))
    true
    (List.length improved >= 3)

(* QCheck: optimizing a random loop-free CFG preserves the
   WMM-reachable outcome set bit-for-bit.  Loop-free generation keeps
   the enumerator exact, so this is a true identity check. *)
let qcheck_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves loop-free outcome sets" ~count:30
    QCheck.(map Rng.create small_nat)
    (fun rng ->
      let p = Fuzz.generate_cfg ~with_loop:false rng in
      let p = Mutate.rename_cfg "qcheck-cfg" p in
      let q = Passes.over_fence p in
      let r = Optimizer.optimize ~algorithm:Optimizer.Linear_scan ~cost:false q in
      let a = Cfg.reachable Enumerate.Wmm q in
      let b = Cfg.reachable Enumerate.Wmm r.Optimizer.optimized in
      r.Optimizer.verdict.Verify.sound && a = b
      && r.Optimizer.output_fences <= r.Optimizer.input_fences)

let test_opt_soak () =
  let r = Opt_soak.run ~rounds:6 ~seed:77 () in
  checkb
    (Format.asprintf "%a" Opt_soak.pp_report r)
    true (Opt_soak.ok r);
  checkb "soak improved something" true (r.Opt_soak.improved > 0)

let () =
  Alcotest.run "opt"
    [
      ( "cfg-structure",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "reachable-blocks" `Quick test_reachable_blocks;
        ] );
      ( "cfg-lowering",
        [
          Alcotest.test_case "of_test/lower round trip" `Quick test_round_trip;
          Alcotest.test_case "straight-line detection" `Quick test_straight_line;
        ] );
      ( "cfg-semantics",
        [
          Alcotest.test_case "reachable = enumerate on straight-line" `Slow
            test_reachable_identity;
          Alcotest.test_case "catalogue cfg expectations" `Quick test_cfg_expectations;
          Alcotest.test_case "unroll monotone" `Slow test_unroll_monotone;
          Alcotest.test_case "loop path shapes" `Quick test_slices_shape;
          Alcotest.test_case "slice tests verify" `Slow test_cfg_slice_tests;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "flat wrappers" `Quick test_mutate_wrappers;
          Alcotest.test_case "block-addressed edits" `Quick test_mutate_cfg_edits;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "rpo + dominators" `Quick test_rpo_dominators;
          Alcotest.test_case "escape" `Quick test_escape;
        ] );
      ( "passes",
        [
          Alcotest.test_case "over-fenced MP" `Quick test_merge_straight_line;
          Alcotest.test_case "adjacent fences merge" `Quick test_merge_adjacent;
          Alcotest.test_case "dsb pinned" `Quick test_merge_dsb_pinned;
          Alcotest.test_case "loop fence weakens" `Quick test_merge_loop;
          Alcotest.test_case "single-bb vs linear scan" `Quick test_single_bb_vs_linear;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "second chance vs acq/rel" `Slow test_second_chance_acq_rel;
          Alcotest.test_case "catalogue sweep sound" `Slow test_optimize_catalogue_sound;
          QCheck_alcotest.to_alcotest qcheck_optimize_preserves;
          Alcotest.test_case "soak" `Slow test_opt_soak;
        ] );
    ]
