(* Tests for the simulated synchronization layer: rings, Pilot rings,
   ticket lock, delegation locks and the data-structure harness.
   Most runs self-verify (payload checks, shadow models, mutual
   exclusion oracles), so "it completes" is already a strong check;
   the assertions below add relative-performance and accounting
   invariants. *)

module P = Armb_platform.Platform
module S = Armb_sync
module Barrier = Armb_cpu.Barrier
module Ordering = Armb_core.Ordering

let check = Alcotest.check

let cross = (0, 28)

let ring_spec () =
  { (S.Spsc_ring.default_spec P.kunpeng916 ~cores:cross) with messages = 800 }

(* ---------- SPSC ring ---------- *)

let test_ring_all_combos_verified () =
  List.iter
    (fun name ->
      let spec = { (ring_spec ()) with barriers = S.Spsc_ring.combo name } in
      let r = S.Spsc_ring.verified_run spec in
      check Alcotest.bool (name ^ " positive throughput") true (r.S.Spsc_ring.throughput > 0.0))
    S.Spsc_ring.combo_names

let test_ring_unknown_combo () =
  match S.Spsc_ring.combo "nonsense" with
  | _ -> Alcotest.fail "unknown combo accepted"
  | exception Invalid_argument _ -> ()

let test_ring_fatal_barrier_dominates () =
  let t name = (S.Spsc_ring.run { (ring_spec ()) with barriers = S.Spsc_ring.combo name }).S.Spsc_ring.throughput in
  let ld_st = t "DMB ld - DMB st" in
  let ld_none = t "DMB ld - No Barrier" in
  let full_stlr = t "DMB full - STLR" in
  check Alcotest.bool "removing the publish barrier is the big win" true
    (ld_none > 2.0 *. ld_st);
  check Alcotest.bool "STLR publish is the worst legal choice" true (full_stlr < ld_st)

let test_ring_small_buffers () =
  let spec = { (ring_spec ()) with slots = 1; messages = 100 } in
  let r = S.Spsc_ring.verified_run spec in
  check Alcotest.bool "slot-1 ring still correct" true (r.S.Spsc_ring.throughput > 0.0)

(* ---------- Pilot ring ---------- *)

let pilot_spec () =
  { (S.Pilot_ring.default_spec P.kunpeng916 ~cores:cross) with messages = 800 }

let test_pilot_ring_verified () =
  let r = S.Pilot_ring.run (pilot_spec ()) in
  check Alcotest.bool "throughput" true (r.S.Pilot_ring.throughput > 0.0)

let test_pilot_beats_best_legal () =
  let best =
    (S.Spsc_ring.run { (ring_spec ()) with barriers = S.Spsc_ring.combo "DMB ld - DMB st" })
      .S.Spsc_ring.throughput
  in
  let pilot = (S.Pilot_ring.run (pilot_spec ())).S.Pilot_ring.throughput in
  check Alcotest.bool "pilot wins" true (pilot > 1.2 *. best)

let test_pilot_batched_words () =
  List.iter
    (fun words ->
      let r = S.Pilot_ring.run_batched ~words (pilot_spec ()) in
      check Alcotest.bool (Printf.sprintf "words=%d verified" words) true
        (r.S.Pilot_ring.throughput > 0.0))
    [ 1; 2; 4; 8 ]

let test_pilot_batched_speedup_declines () =
  let speedup words =
    let spec = { (pilot_spec ()) with messages = 600 } in
    let p = (S.Pilot_ring.run_batched ~words spec).S.Pilot_ring.throughput in
    let b = (S.Pilot_ring.run_batched_baseline ~words spec).S.Pilot_ring.throughput in
    p /. b
  in
  let s1 = speedup 1 and s8 = speedup 8 in
  check Alcotest.bool "improvement declines with batching" true (s8 < s1)

let test_pilot_bad_words () =
  match S.Pilot_ring.run_batched ~words:9 (pilot_spec ()) with
  | _ -> Alcotest.fail "words > 8 accepted"
  | exception Invalid_argument _ -> ()

(* ---------- ticket lock ---------- *)

let tl_spec () =
  {
    (S.Ticket_lock.default_spec P.kunpeng916 ~cores:(List.init 8 (fun i -> i * 7)))
    with
    acquisitions = 60;
  }

let test_ticket_mutual_exclusion () =
  (* the run itself contains the mutual-exclusion oracle *)
  let r = S.Ticket_lock.run (tl_spec ()) in
  check Alcotest.bool "throughput" true (r.S.Ticket_lock.throughput > 0.0)

let test_ticket_counter_exact () =
  let m = Armb_cpu.Machine.create P.kunpeng916 in
  let lock = S.Ticket_lock.create m in
  let shared = Armb_cpu.Machine.alloc_line m in
  let iters = 40 in
  for core = 0 to 5 do
    Armb_cpu.Machine.spawn m ~core (fun c ->
        for _ = 1 to iters do
          S.Ticket_lock.acquire lock c;
          let v = Armb_cpu.Core.await c (Armb_cpu.Core.load c shared) in
          Armb_cpu.Core.store c shared (Int64.add v 1L);
          S.Ticket_lock.release lock c
        done)
  done;
  Armb_cpu.Machine.run_exn m;
  check Alcotest.int64 "lock-protected increments all landed"
    (Int64.of_int (6 * iters))
    (Armb_mem.Memsys.load_value (Armb_cpu.Machine.mem m) ~addr:shared)

let test_ticket_removing_barrier_helps () =
  let t barrier =
    (S.Ticket_lock.run { (tl_spec ()) with release_barrier = barrier; cs_lines = 2 })
      .S.Ticket_lock.throughput
  in
  let normal = t (Ordering.Bar (Barrier.Dmb Full)) in
  let removed = t Ordering.No_barrier in
  check Alcotest.bool "barrier removal helps with RMRs in the CS" true (removed > normal)

let test_ticket_stlr_release () =
  let r = S.Ticket_lock.run { (tl_spec ()) with release_barrier = Ordering.Stlr_release } in
  check Alcotest.bool "stlr release works" true (r.S.Ticket_lock.throughput > 0.0)

(* ---------- FFWD ---------- *)

let ffwd_spec ?(pilot = false) () =
  {
    (S.Ffwd.default_spec P.kunpeng916 ~server_core:0 ~client_cores:(List.init 8 (fun i -> i + 1)))
    with
    rounds = 60;
    pilot;
  }

let test_ffwd_serves_all () =
  let r = S.Ffwd.run (ffwd_spec ()) in
  check Alcotest.bool "throughput" true (r.S.Ffwd.throughput > 0.0)

let test_ffwd_pilot_serves_all () =
  let r = S.Ffwd.run (ffwd_spec ~pilot:true ()) in
  check Alcotest.bool "pilot throughput" true (r.S.Ffwd.throughput > 0.0)

let test_ffwd_pilot_faster_under_contention () =
  let t pilot =
    (S.Ffwd.run { (ffwd_spec ~pilot ()) with interval_nops = 100 }).S.Ffwd.throughput
  in
  check Alcotest.bool "pilot >= plain at high contention" true (t true > 0.95 *. t false)

let test_ffwd_barrier_combos () =
  List.iter
    (fun read_req ->
      let spec =
        { (ffwd_spec ()) with barriers = { S.Ffwd.read_req; publish_resp = Ordering.Bar (Barrier.Dmb St) } }
      in
      let r = S.Ffwd.run spec in
      check Alcotest.bool "combo works" true (r.S.Ffwd.throughput > 0.0))
    [
      Ordering.Bar (Barrier.Dmb Full);
      Ordering.Bar (Barrier.Dmb Ld);
      Ordering.Ldar_acquire;
      Ordering.Ctrl_isb;
      Ordering.Addr_dep;
    ]

let test_ffwd_rejects_server_as_client () =
  let spec = { (ffwd_spec ()) with server_core = 1 } in
  match S.Ffwd.run spec with
  | _ -> Alcotest.fail "server==client accepted"
  | exception Invalid_argument _ -> ()

(* ---------- DSM-Synch ---------- *)

let ds_spec ?(pilot = false) () =
  {
    (S.Dsmsynch.default_spec P.kunpeng916 ~cores:(List.init 9 (fun i -> i)))
    with
    rounds = 60;
    pilot;
  }

let test_dsmsynch_serves_all () =
  let r = S.Dsmsynch.run (ds_spec ()) in
  check Alcotest.bool "throughput" true (r.S.Dsmsynch.throughput > 0.0)

let test_dsmsynch_pilot_serves_all () =
  let r = S.Dsmsynch.run (ds_spec ~pilot:true ()) in
  check Alcotest.bool "pilot throughput" true (r.S.Dsmsynch.throughput > 0.0)

let test_dsmsynch_combining_happens () =
  let r = S.Dsmsynch.run { (ds_spec ()) with interval_nops = 50 } in
  check Alcotest.bool "some requests combined" true (r.S.Dsmsynch.combines > 0)

let test_dsmsynch_combine_bound_respected () =
  (* with bound 1 nothing is ever combined for another thread *)
  let r = S.Dsmsynch.run { (ds_spec ()) with combine_bound = 1 } in
  check Alcotest.int "no combining at bound 1" 0 r.S.Dsmsynch.combines

let test_dsmsynch_single_thread () =
  let r =
    S.Dsmsynch.run { (S.Dsmsynch.default_spec P.kunpeng916 ~cores:[ 0 ]) with rounds = 30 }
  in
  check Alcotest.bool "works with one party" true (r.S.Dsmsynch.throughput > 0.0)

(* ---------- data-structure harness ---------- *)

let ds_bench_spec lock =
  { (S.Ds_bench.default_spec P.kunpeng916 ~lock) with workers = 8; ops_per_worker = 48 }

let test_ds_queue_all_locks () =
  List.iter
    (fun lk ->
      let r = S.Ds_bench.run_queue (ds_bench_spec lk) in
      check Alcotest.int (S.Ds_bench.lock_name lk ^ " ops") (8 * 48) r.S.Ds_bench.ops)
    S.Ds_bench.all_locks

let test_ds_stack_all_locks () =
  List.iter
    (fun lk ->
      let r = S.Ds_bench.run_stack (ds_bench_spec lk) in
      check Alcotest.bool (S.Ds_bench.lock_name lk) true (r.S.Ds_bench.throughput > 0.0))
    S.Ds_bench.all_locks

let test_ds_sorted_list_all_locks () =
  List.iter
    (fun lk ->
      let r = S.Ds_bench.run_sorted_list ~preload:30 (ds_bench_spec lk) in
      check Alcotest.bool (S.Ds_bench.lock_name lk) true (r.S.Ds_bench.throughput > 0.0))
    S.Ds_bench.all_locks

let test_ds_hash_all_locks () =
  List.iter
    (fun lk ->
      let r = S.Ds_bench.run_hash_table ~buckets:8 ~preload:64 (ds_bench_spec lk) in
      check Alcotest.bool (S.Ds_bench.lock_name lk) true (r.S.Ds_bench.throughput > 0.0))
    S.Ds_bench.all_locks

let test_ds_delegation_beats_ticket_on_queue () =
  let t lk = (S.Ds_bench.run_queue (ds_bench_spec lk)).S.Ds_bench.throughput in
  check Alcotest.bool "delegation wins under contention" true
    (t S.Ds_bench.Dsynch > t S.Ds_bench.Ticket)

(* ---------- Barrier primitives ---------- *)

let barrier_spec ~cfg ~kind ~cores =
  { S.Sync_barrier.cfg; kind; cores; episodes = 3; work = 40 }

let all_kinds = [ S.Sync_barrier.Central; S.Sync_barrier.Tree 4; S.Sync_barrier.Dissemination ]

(* 12 participants: not a power of two (exercises the dissemination
   wrap-around) and not a multiple of the tree arity (ragged leaf). *)
let test_barrier_all_kinds_complete () =
  List.iter
    (fun kind ->
      let cores = List.init 12 (fun i -> 2 * i) in
      let r = S.Sync_barrier.run (barrier_spec ~cfg:P.kunpeng916 ~kind ~cores) in
      let name = S.Sync_barrier.kind_name kind in
      check Alcotest.int (name ^ " episodes") 3 r.S.Sync_barrier.episodes;
      check Alcotest.bool (name ^ " cycles") true (r.S.Sync_barrier.cycles > 0))
    all_kinds

let test_barrier_deterministic () =
  List.iter
    (fun kind ->
      let run () =
        (S.Sync_barrier.run
           (barrier_spec ~cfg:P.kunpeng916 ~kind ~cores:(List.init 8 Fun.id)))
          .S.Sync_barrier.cycles
      in
      check Alcotest.int (S.Sync_barrier.kind_name kind ^ " deterministic") (run ())
        (run ()))
    all_kinds

(* 65 participants on a 72-core machine: the sharer set of the sense
   line spans three 32-bit bitset words and includes bit 64 exactly at
   a word boundary. *)
let test_barrier_past_word_boundary () =
  let cfg = P.manycore ~cores:72 in
  List.iter
    (fun kind ->
      let r = S.Sync_barrier.run (barrier_spec ~cfg ~kind ~cores:(List.init 65 Fun.id)) in
      check Alcotest.bool
        (S.Sync_barrier.kind_name kind ^ " wide run")
        true
        (r.S.Sync_barrier.cycles > 0))
    all_kinds

let test_barrier_single_core () =
  List.iter
    (fun kind ->
      let r = S.Sync_barrier.run (barrier_spec ~cfg:P.raspberrypi4 ~kind ~cores:[ 0 ]) in
      check Alcotest.bool (S.Sync_barrier.kind_name kind ^ " n=1") true
        (r.S.Sync_barrier.cycles > 0))
    all_kinds

let test_barrier_tree_beats_central_at_128 () =
  let cpe kind =
    (S.Sync_barrier.run
       {
         S.Sync_barrier.cfg = P.manycore ~cores:128;
         kind;
         cores = List.init 128 Fun.id;
         episodes = 2;
         work = 40;
       })
      .S.Sync_barrier.cycles_per_episode
  in
  check Alcotest.bool "tree4 < central at 128 cores" true
    (cpe (S.Sync_barrier.Tree 4) < cpe S.Sync_barrier.Central)

let test_barrier_bad_specs () =
  let spec = barrier_spec ~cfg:P.raspberrypi4 ~kind:S.Sync_barrier.Central ~cores:[ 0 ] in
  List.iter
    (fun bad ->
      match S.Sync_barrier.run bad with
      | _ -> Alcotest.fail "bad spec accepted"
      | exception Invalid_argument _ -> ())
    [
      { spec with cores = [] };
      { spec with episodes = 0 };
      { spec with work = -1 };
      { spec with kind = S.Sync_barrier.Tree 1 };
    ]

(* ---------- Sim_alloc ---------- *)

let test_sim_alloc_recycles () =
  let m = Armb_cpu.Machine.create P.kunpeng916 in
  let a = S.Sim_alloc.create m ~capacity:2 in
  let x = S.Sim_alloc.alloc a in
  let y = S.Sim_alloc.alloc a in
  check Alcotest.bool "distinct" true (x <> y);
  check Alcotest.int "in use" 2 (S.Sim_alloc.in_use a);
  (match S.Sim_alloc.alloc a with
  | _ -> Alcotest.fail "exhaustion not detected"
  | exception Failure _ -> ());
  S.Sim_alloc.free a x;
  check Alcotest.int "freed" 1 (S.Sim_alloc.in_use a);
  let z = S.Sim_alloc.alloc a in
  check Alcotest.int "recycled address" x z

let () =
  Alcotest.run "armb_sync"
    [
      ( "spsc-ring",
        [
          Alcotest.test_case "all combos verified" `Slow test_ring_all_combos_verified;
          Alcotest.test_case "unknown combo" `Quick test_ring_unknown_combo;
          Alcotest.test_case "fatal barrier dominates" `Slow test_ring_fatal_barrier_dominates;
          Alcotest.test_case "single-slot ring" `Quick test_ring_small_buffers;
        ] );
      ( "pilot-ring",
        [
          Alcotest.test_case "verified run" `Quick test_pilot_ring_verified;
          Alcotest.test_case "beats best legal" `Slow test_pilot_beats_best_legal;
          Alcotest.test_case "batched words" `Slow test_pilot_batched_words;
          Alcotest.test_case "speedup declines with batching" `Slow
            test_pilot_batched_speedup_declines;
          Alcotest.test_case "word bound" `Quick test_pilot_bad_words;
        ] );
      ( "ticket-lock",
        [
          Alcotest.test_case "mutual exclusion oracle" `Quick test_ticket_mutual_exclusion;
          Alcotest.test_case "protected counter exact" `Quick test_ticket_counter_exact;
          Alcotest.test_case "barrier removal helps" `Slow test_ticket_removing_barrier_helps;
          Alcotest.test_case "stlr release" `Quick test_ticket_stlr_release;
        ] );
      ( "ffwd",
        [
          Alcotest.test_case "serves all requests" `Quick test_ffwd_serves_all;
          Alcotest.test_case "pilot serves all" `Quick test_ffwd_pilot_serves_all;
          Alcotest.test_case "pilot competitive" `Slow test_ffwd_pilot_faster_under_contention;
          Alcotest.test_case "barrier combos" `Slow test_ffwd_barrier_combos;
          Alcotest.test_case "server/client overlap rejected" `Quick
            test_ffwd_rejects_server_as_client;
        ] );
      ( "dsmsynch",
        [
          Alcotest.test_case "serves all requests" `Quick test_dsmsynch_serves_all;
          Alcotest.test_case "pilot serves all" `Quick test_dsmsynch_pilot_serves_all;
          Alcotest.test_case "combining happens" `Quick test_dsmsynch_combining_happens;
          Alcotest.test_case "combine bound" `Quick test_dsmsynch_combine_bound_respected;
          Alcotest.test_case "single thread" `Quick test_dsmsynch_single_thread;
        ] );
      ( "data-structures",
        [
          Alcotest.test_case "queue under every lock" `Slow test_ds_queue_all_locks;
          Alcotest.test_case "stack under every lock" `Slow test_ds_stack_all_locks;
          Alcotest.test_case "sorted list under every lock" `Slow
            test_ds_sorted_list_all_locks;
          Alcotest.test_case "hash table under every lock" `Slow test_ds_hash_all_locks;
          Alcotest.test_case "delegation beats ticket" `Slow
            test_ds_delegation_beats_ticket_on_queue;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "all kinds complete" `Quick test_barrier_all_kinds_complete;
          Alcotest.test_case "deterministic" `Quick test_barrier_deterministic;
          Alcotest.test_case "past word boundary" `Slow test_barrier_past_word_boundary;
          Alcotest.test_case "single core" `Quick test_barrier_single_core;
          Alcotest.test_case "tree beats central at 128" `Slow
            test_barrier_tree_beats_central_at_128;
          Alcotest.test_case "bad specs" `Quick test_barrier_bad_specs;
        ] );
      ("sim-alloc", [ Alcotest.test_case "recycling" `Quick test_sim_alloc_recycles ]);
    ]
