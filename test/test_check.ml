(* Tests for the happens-before sanitizer: machine-level harnesses for
   the flagged / clean verdicts, the order-stripping helper, and the
   catalogue-wide cross-check that is this layer's acceptance bar. *)

module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Barrier = Armb_cpu.Barrier
module San = Armb_check.Sanitizer
module Lang = Armb_litmus.Lang
module Cat = Armb_litmus.Catalogue
module Sim = Armb_litmus.Sim_runner
module Mut = Armb_litmus.Mutate

let check = Alcotest.check

(* Message passing at the Core API level, in four flavours. *)
let mp_findings ~variant =
  let san = San.create () in
  let m =
    Machine.create ~observer:(San.observer san) Armb_platform.Platform.kunpeng916
  in
  let data = Machine.alloc_line m in
  let flag = Machine.alloc_line m in
  Armb_mem.Memsys.place (Machine.mem m) ~core:28 ~addr:data;
  Armb_mem.Memsys.place (Machine.mem m) ~core:0 ~addr:flag;
  (match variant with
  | `Racy ->
    Machine.spawn m ~core:0 (fun c ->
        Core.store c data 23L;
        Core.store c flag 1L);
    Machine.spawn m ~core:28 (fun c ->
        let f = Core.load c flag in
        let d = Core.load c data in
        ignore (Core.await c f);
        ignore (Core.await c d))
  | `Fenced ->
    Machine.spawn m ~core:0 (fun c ->
        Core.store c data 23L;
        Core.barrier c (Barrier.Dmb St);
        Core.store c flag 1L);
    Machine.spawn m ~core:28 (fun c ->
        ignore (Core.await c (Core.load c flag));
        Core.barrier c (Barrier.Dmb Ld);
        ignore (Core.await c (Core.load c data)))
  | `Acq_rel ->
    Machine.spawn m ~core:0 (fun c ->
        Core.store c data 23L;
        Core.stlr c flag 1L);
    Machine.spawn m ~core:28 (fun c ->
        let f = Core.ldar c flag in
        let d = Core.load c data in
        ignore (Core.await c f);
        ignore (Core.await c d))
  | `Pilot ->
    Machine.spawn m ~core:0 (fun c -> Core.store c data 0x1_0000_0017L);
    Machine.spawn m ~core:28 (fun c -> ignore (Core.await c (Core.load c data))));
  Machine.run_exn m;
  San.findings san

let test_racy_mp_flagged () =
  let fs = mp_findings ~variant:`Racy in
  check Alcotest.int "both cores' unfenced pairs flagged" 2 (List.length fs);
  let producer =
    List.find_opt (fun (f : San.finding) -> f.core = 0) fs
  in
  match producer with
  | None -> Alcotest.fail "producer store-store pair not flagged"
  | Some f ->
    check Alcotest.bool "store-store fix suggests dmb st" true
      (let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       contains f.fix "dmb st");
    check Alcotest.bool "chain reaches the consumer" true
      (List.exists (fun (o : San.op) -> o.op_core = 28) f.chain)

let test_fenced_mp_clean () =
  check Alcotest.int "dmb st / dmb ld MP clean" 0
    (List.length (mp_findings ~variant:`Fenced))

let test_acq_rel_mp_clean () =
  check Alcotest.int "stlr/ldar MP clean" 0
    (List.length (mp_findings ~variant:`Acq_rel))

let test_pilot_mp_clean () =
  check Alcotest.int "single-word Pilot MP clean" 0
    (List.length (mp_findings ~variant:`Pilot))

(* ---------- order stripping ---------- *)

let test_strip_order () =
  let stripped = Mut.strip_order Cat.mp_dmb in
  check Alcotest.bool "stripped test has no devices left" false
    (Mut.has_order_devices stripped);
  let n_instrs t =
    List.fold_left (fun acc th -> acc + List.length th) 0 t.Lang.threads
  in
  (* mp_dmb is MP plus two fences; stripping deletes exactly those. *)
  check Alcotest.int "fences removed" (n_instrs Cat.mp) (n_instrs stripped);
  check Alcotest.bool "acq/rel cleared" false
    (Mut.has_order_devices (Mut.strip_order Cat.mp_acq_rel));
  check Alcotest.bool "data deps severed" false
    (Mut.has_order_devices (Mut.strip_order Cat.lb_data_dep))

let test_has_order_devices () =
  List.iter
    (fun (t, expected) ->
      check Alcotest.bool t.Lang.name expected (Mut.has_order_devices t))
    [
      (Cat.mp, false);
      (Cat.mp_pilot, false);
      (Cat.coherence, false);
      (Cat.mp_dmb, true);
      (Cat.mp_acq_rel, true);
      (Cat.lb_data_dep, true);
      (Cat.iriw_addr, true);
    ]

(* ---------- findings dedup across trials ---------- *)

let test_findings_deduped () =
  let r = Sim.run ~trials:8 ~check:true Cat.mp in
  (* MP has exactly two unfenced pairs (producer W->W, consumer R->R);
     eight trials must not multiply them. *)
  check Alcotest.int "two deduped findings" 2 (List.length r.Sim.findings)

let test_check_off_is_empty () =
  let r = Sim.run ~trials:2 Cat.mp in
  check Alcotest.int "no findings without ~check" 0 (List.length r.Sim.findings)

(* ---------- the acceptance bar: catalogue cross-check ---------- *)

let test_cross_check () =
  let rows, ok = Sim.cross_check ~trials:10 () in
  check Alcotest.int "one row per catalogue test" (List.length Cat.all)
    (List.length rows);
  if not ok then
    List.iter
      (fun (r : Sim.check_row) ->
        if not r.row_ok then
          Alcotest.failf "cross-check failed on %s (base:%d stripped:%s)" r.test_name
            r.base_findings
            (match r.stripped_findings with
            | Some n -> string_of_int n
            | None -> "-"))
      rows

let test_forbidden_tests_clean_and_stripped_flagged () =
  List.iter
    (fun (t : Lang.test) ->
      if not t.Lang.expect_wmm then begin
        let base, stripped = Sim.check_test ~trials:10 t in
        check Alcotest.int (t.Lang.name ^ " base clean") 0
          (List.length base.Sim.findings);
        match stripped with
        | Some r ->
          check Alcotest.bool (t.Lang.name ^ " stripped flagged") true
            (List.length r.Sim.findings > 0)
        | None -> ()
      end)
    Cat.all

let () =
  Alcotest.run "check"
    [
      ( "sanitizer",
        [
          Alcotest.test_case "racy MP flagged" `Quick test_racy_mp_flagged;
          Alcotest.test_case "fenced MP clean" `Quick test_fenced_mp_clean;
          Alcotest.test_case "acq/rel MP clean" `Quick test_acq_rel_mp_clean;
          Alcotest.test_case "Pilot MP clean" `Quick test_pilot_mp_clean;
        ] );
      ( "strip",
        [
          Alcotest.test_case "strip_order" `Quick test_strip_order;
          Alcotest.test_case "has_order_devices" `Quick test_has_order_devices;
        ] );
      ( "runner",
        [
          Alcotest.test_case "findings deduped" `Quick test_findings_deduped;
          Alcotest.test_case "check off -> empty" `Quick test_check_off_is_empty;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "catalogue" `Slow test_cross_check;
          Alcotest.test_case "forbidden clean, stripped flagged" `Slow
            test_forbidden_tests_clean_and_stripped_flagged;
        ] );
    ]
