(* Unit and property tests for the multi-word core bitset.  The
   properties check every operation against a sorted-int-list model,
   with generators biased toward word boundaries (31/32, 63/64, ...)
   where a shift/mask bug would hide. *)

module Coreset = Armb_mem.Coreset

let check = Alcotest.check

(* ---------- unit: word boundaries ---------- *)

let boundary_caps = [ 1; 31; 32; 33; 62; 63; 64; 65; 96; 511; 512; 1024 ]

let test_boundary_bits () =
  List.iter
    (fun cap ->
      let s = Coreset.create ~cores:cap in
      check Alcotest.int "capacity" cap (Coreset.capacity s);
      check Alcotest.int "words" ((cap + 31) / 32) (Coreset.words s);
      (* set and clear the extreme bits of every word the set spans *)
      let probes =
        List.filter (fun i -> i >= 0 && i < cap)
          [ 0; 30; 31; 32; 33; 62; 63; 64; 65; cap - 2; cap - 1 ]
      in
      List.iter
        (fun i ->
          Coreset.add s i;
          if not (Coreset.mem s i) then Alcotest.failf "cap %d: bit %d lost" cap i)
        probes;
      check Alcotest.int
        (Printf.sprintf "cap %d cardinal" cap)
        (List.length (List.sort_uniq compare probes))
        (Coreset.cardinal s);
      List.iter
        (fun i ->
          Coreset.remove s i;
          if Coreset.mem s i then Alcotest.failf "cap %d: bit %d sticky" cap i)
        probes;
      check Alcotest.bool "empty again" true (Coreset.is_empty s))
    boundary_caps

let test_bounds_checked () =
  let s = Coreset.create ~cores:64 in
  List.iter
    (fun (name, f) ->
      List.iter
        (fun i ->
          match f s i with
          | _ -> Alcotest.failf "%s accepted out-of-range core %d" name i
          | exception Invalid_argument _ -> ())
        [ -1; 64; 1000 ])
    [
      ("add", fun s i -> Coreset.add s i);
      ("remove", fun s i -> Coreset.remove s i);
      ("mem", fun s i -> ignore (Coreset.mem s i));
      ("set_only", fun s i -> Coreset.set_only s i);
      ("any_except", fun s i -> ignore (Coreset.any_except s i));
      ("cardinal_except", fun s i -> ignore (Coreset.cardinal_except s i));
    ];
  (match Coreset.create ~cores:0 with
  | _ -> Alcotest.fail "zero capacity accepted"
  | exception Invalid_argument _ -> ())

let test_set_pair_and_only () =
  let s = Coreset.create ~cores:512 in
  Coreset.add s 100;
  Coreset.set_only s 63;
  check (Alcotest.list Alcotest.int) "set_only" [ 63 ] (Coreset.to_list s);
  Coreset.set_pair s 31 480;
  check (Alcotest.list Alcotest.int) "set_pair" [ 31; 480 ] (Coreset.to_list s);
  Coreset.set_pair s 64 64;
  check (Alcotest.list Alcotest.int) "set_pair same" [ 64 ] (Coreset.to_list s)

(* ---------- properties vs a sorted-list model ---------- *)

(* capacities and members hug the word boundaries *)
let cap_gen = QCheck.Gen.oneofl boundary_caps

let member_gen cap =
  QCheck.Gen.(
    oneof
      [
        int_bound (cap - 1);
        (* cluster around multiples of 32 *)
        map
          (fun (w, d) -> min (cap - 1) (max 0 ((w * 32) + d - 2)))
          (pair (int_bound (((cap + 31) / 32) - 1)) (int_bound 4));
      ])

let set_gen =
  QCheck.Gen.(
    cap_gen >>= fun cap ->
    list_size (int_bound 24) (member_gen cap) >>= fun xs -> return (cap, xs))

let arb_set =
  QCheck.make
    ~print:(fun (cap, xs) ->
      Printf.sprintf "cap=%d members=[%s]" cap (String.concat ";" (List.map string_of_int xs)))
    set_gen

let build (cap, xs) =
  let s = Coreset.create ~cores:cap in
  List.iter (Coreset.add s) xs;
  (s, List.sort_uniq compare xs)

let prop_to_list =
  QCheck.Test.make ~name:"to_list = sorted model" ~count:500 arb_set (fun input ->
      let s, model = build input in
      Coreset.to_list s = model)

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal/cardinal_except/any_except" ~count:500
    (QCheck.pair arb_set QCheck.small_nat)
    (fun ((cap, xs), k) ->
      let s, model = build (cap, xs) in
      let i = k mod cap in
      let except = List.filter (fun x -> x <> i) model in
      Coreset.cardinal s = List.length model
      && Coreset.cardinal_except s i = List.length except
      && Coreset.any_except s i = (except <> []))

let prop_remove =
  QCheck.Test.make ~name:"remove tracks model" ~count:500
    (QCheck.pair arb_set QCheck.small_nat)
    (fun ((cap, xs), k) ->
      let s, model = build (cap, xs) in
      let i = k mod cap in
      Coreset.remove s i;
      Coreset.to_list s = List.filter (fun x -> x <> i) model)

let prop_intersects =
  QCheck.Test.make ~name:"intersects/outside_except vs model" ~count:500
    (QCheck.triple arb_set (QCheck.list_of_size (QCheck.Gen.int_bound 24) QCheck.small_nat)
       QCheck.small_nat)
    (fun ((cap, xs), ys, k) ->
      let a, ma = build (cap, xs) in
      let b, mb = build (cap, List.map (fun y -> y mod cap) ys) in
      let except = k mod cap in
      let inter = List.exists (fun x -> List.mem x mb) ma in
      let outside = List.exists (fun x -> (not (List.mem x mb)) && x <> except) ma in
      Coreset.intersects a b = inter
      && Coreset.outside_except a b ~except = outside)

let prop_copy_equal =
  QCheck.Test.make ~name:"copy is equal, then diverges" ~count:300 arb_set (fun input ->
      let s, model = build input in
      let c = Coreset.copy s in
      let was_equal = Coreset.equal s c in
      (* mutate the copy: flip the smallest member (or add 0) *)
      (match model with [] -> Coreset.add c 0 | x :: _ -> Coreset.remove c x);
      was_equal && not (Coreset.equal s c) && Coreset.to_list s = model)

let () =
  Alcotest.run "armb_coreset"
    [
      ( "unit",
        [
          Alcotest.test_case "word boundaries" `Quick test_boundary_bits;
          Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
          Alcotest.test_case "set_only / set_pair" `Quick test_set_pair_and_only;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_to_list; prop_cardinal; prop_remove; prop_intersects; prop_copy_equal ] );
    ]
