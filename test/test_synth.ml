(* Tests for the fence synthesizer: placement IR, minimal-repair search,
   the Pilot rewrite, catalogue strip/resynthesize round trips, the
   advisor-vs-enumerator agreement property, and the fuzz-repair soak. *)

module Lang = Armb_litmus.Lang
module Enum = Armb_litmus.Enumerate
module Sim = Armb_litmus.Sim_runner
module Cat = Armb_litmus.Catalogue
module Mut = Armb_litmus.Mutate
module Ordering = Armb_core.Ordering
module Advisor = Armb_core.Advisor
module Barrier = Armb_cpu.Barrier
module P = Armb_synth.Placement
module Search = Armb_synth.Search
module Cost = Armb_synth.Cost
module Pilot = Armb_synth.Pilot_rewrite
module Fix = Armb_synth.Fix
module Soak = Armb_synth.Soak

let check = Alcotest.check

let allows = Enum.allows Enum.Wmm

(* ---------- Mutate (moved out of Sim_runner) ---------- *)

let test_strip_keep_values () =
  let stripped = Mut.strip_order ~keep_values:true Cat.lb_data_dep in
  (* data-dependency values survive a keep-values strip *)
  let has_reg_store =
    List.exists
      (List.exists (function
        | Lang.Store { v = Lang.Reg _; _ } -> true
        | _ -> false))
      stripped.Lang.threads
  in
  check Alcotest.bool "Reg values kept" true has_reg_store;
  check Alcotest.bool "still forbidden" false (allows stripped);
  (* the default strip severs them *)
  let severed = Mut.strip_order Cat.lb_data_dep in
  let has_reg_store' =
    List.exists
      (List.exists (function
        | Lang.Store { v = Lang.Reg _; _ } -> true
        | _ -> false))
      severed.Lang.threads
  in
  check Alcotest.bool "Reg values severed" false has_reg_store';
  check Alcotest.bool "race resurfaces" true (allows severed)

let test_mutate_point_edits () =
  let t = Mut.strip_order ~keep_values:true Cat.mp_dmb in
  let with_fence = Mut.insert_fence ~thread:0 ~pos:1 Lang.F_dmb_st t in
  (match with_fence.Lang.threads with
  | [ [ _; Lang.Fence Lang.F_dmb_st; _ ]; _ ] -> ()
  | _ -> Alcotest.fail "fence not inserted at producer gap");
  let acq = Mut.set_acquire ~thread:1 ~idx:0 t in
  (match acq.Lang.threads with
  | [ _; Lang.Load { acquire = true; _ } :: _ ] -> ()
  | _ -> Alcotest.fail "acquire not set");
  let rel = Mut.set_release ~thread:0 ~idx:1 t in
  (match rel.Lang.threads with
  | [ [ _; Lang.Store { release = true; _ } ]; _ ] -> ()
  | _ -> Alcotest.fail "release not set")

(* ---------- first-class ctrl+ISB ---------- *)

let mp_with_consumer consumer =
  {
    Cat.mp with
    Lang.name = "MP+test-consumer";
    threads =
      [ [ Lang.st "data" 23L; Lang.fence Lang.F_dmb_st; Lang.st "flag" 1L ]; consumer ];
  }

let test_isb_enumerator () =
  (* ctrl+ISB on the consumer orders the two loads: forbidden *)
  let isb =
    mp_with_consumer [ Lang.ld "flag" "r1"; Lang.fence Lang.F_isb; Lang.ld "data" "r2" ]
  in
  check Alcotest.bool "MP+isb forbidden" false (allows isb);
  (* a store fence on the load side orders nothing: still allowed *)
  let st_fence =
    mp_with_consumer
      [ Lang.ld "flag" "r1"; Lang.fence Lang.F_dmb_st; Lang.ld "data" "r2" ]
  in
  check Alcotest.bool "MP+dmb.st-consumer allowed" true (allows st_fence)

let test_isb_no_store_order () =
  (* ISB never orders store->store: 2+2W stays weak under it *)
  let t =
    {
      Cat.two_plus_two_w with
      Lang.name = "2+2W+isbs";
      threads =
        [
          [ Lang.st "x" 1L; Lang.fence Lang.F_isb; Lang.st "y" 2L ];
          [ Lang.st "y" 1L; Lang.fence Lang.F_isb; Lang.st "x" 2L ];
        ];
    }
  in
  check Alcotest.bool "2+2W+isbs still allowed" true (allows t)

let test_isb_sim_and_sanitizer () =
  let isb =
    mp_with_consumer [ Lang.ld "flag" "r1"; Lang.fence Lang.F_isb; Lang.ld "data" "r2" ]
  in
  let r = Sim.run ~trials:60 ~check:true isb in
  check Alcotest.bool "sim never witnesses forbidden outcome" false
    r.Sim.interesting_witnessed;
  check Alcotest.bool "consistent with model" true (Sim.consistent_with_model r isb);
  check Alcotest.int "sanitizer clean" 0 (List.length r.Sim.findings)

(* ---------- placement ---------- *)

let test_apply_reconstructs () =
  let stripped = Mut.strip_order ~keep_values:true Cat.mp_dmb in
  let repaired =
    P.apply stripped
      [
        P.Insert_fence { thread = 0; pos = 1; fence = Lang.F_dmb_st };
        P.Insert_fence { thread = 1; pos = 1; fence = Lang.F_dmb_ld };
      ]
  in
  check Alcotest.bool "same threads as hand-fenced original" true
    (repaired.Lang.threads = Cat.mp_dmb.Lang.threads);
  check Alcotest.bool "forbidden again" false (allows repaired)

let test_candidates_value_neutral () =
  (* no candidate edit may change a stored value *)
  let values t =
    List.map
      (List.filter_map (function
        | Lang.Store { v; var; _ } -> Some (var, v)
        | _ -> None))
      t.Lang.threads
  in
  List.iter
    (fun (t : Lang.test) ->
      let base = values t in
      List.iter
        (fun e ->
          let edited = values (P.apply t [ e ]) in
          if edited <> base then
            Alcotest.failf "%s: edit %s changed stored values" t.Lang.name
              (P.edit_to_string t e))
        (P.candidates t))
    [ Cat.mp; Cat.sb; Cat.lb; Mut.strip_order ~keep_values:true Cat.wrc ]

(* ---------- advisor vs enumerator (property) ---------- *)

(* Canonical two-thread tests where exactly one program-order pair on
   the "device side" must be ordered; the other side is fully ordered
   by construction.  A device is applied at that pair and the
   enumerator's verdict (forbidden iff the device suffices) must agree
   with [Advisor.sufficient] for the corresponding pair kind. *)

type pattern = {
  pat_name : string;
  base : Lang.test;  (** device side bare; weak outcome reachable *)
  device_thread : int;
  from_ : Advisor.from_access;
  to_ : Advisor.to_access;
}

let mp_ll =
  {
    pat_name = "load->load (MP consumer)";
    base =
      {
        Cat.mp with
        Lang.name = "pat-ll";
        threads =
          [
            [ Lang.st "data" 23L; Lang.fence Lang.F_dmb_st; Lang.st "flag" 1L ];
            [ Lang.ld "flag" "r1"; Lang.ld "data" "r2" ];
          ];
      };
    device_thread = 1;
    from_ = Advisor.From_load;
    to_ = Advisor.To_load;
  }

let lb_ls =
  {
    pat_name = "load->store (LB side)";
    base =
      {
        Cat.lb with
        Lang.name = "pat-ls";
        threads =
          [
            [ Lang.ld "x" "r1"; Lang.st "y" 2L ];
            [ Lang.ld "y" "r1"; Lang.st ~addr_dep:"r1" "x" 3L ];
          ];
        interesting = (fun o -> o "0:r1" = 3L && o "1:r1" = 2L);
      };
    device_thread = 0;
    from_ = Advisor.From_load;
    to_ = Advisor.To_store;
  }

let mp_ss =
  {
    pat_name = "store->store (MP producer)";
    base =
      {
        Cat.mp with
        Lang.name = "pat-ss";
        threads =
          [
            [ Lang.st "data" 23L; Lang.st "flag" 1L ];
            [ Lang.ld "flag" "r1"; Lang.ld ~addr_dep:"r1" "data" "r2" ];
          ];
      };
    device_thread = 0;
    from_ = Advisor.From_store;
    to_ = Advisor.To_store;
  }

let sb_sl =
  {
    pat_name = "store->load (SB side)";
    base =
      {
        Cat.sb with
        Lang.name = "pat-sl";
        threads =
          [
            [ Lang.st "x" 1L; Lang.ld "y" "r1" ];
            [ Lang.st "y" 1L; Lang.fence Lang.F_dmb_full; Lang.ld "x" "r1" ];
          ];
      };
    device_thread = 0;
    from_ = Advisor.From_store;
    to_ = Advisor.To_load;
  }

let patterns = [ mp_ll; lb_ls; mp_ss; sb_sl ]

(* Approaches expressible as value-neutral point edits.  [Data_dep] and
   [Ctrl_dep] are absent by design: the first changes stored values, the
   second is represented by [Addr_dep] in this language. *)
let approaches =
  [
    Ordering.Bar (Barrier.Dmb Full);
    Ordering.Bar (Barrier.Dmb St);
    Ordering.Bar (Barrier.Dmb Ld);
    Ordering.Bar (Barrier.Dsb Full);
    Ordering.Ctrl_isb;
    Ordering.Ldar_acquire;
    Ordering.Stlr_release;
    Ordering.Addr_dep;
  ]

let edit_of_approach (p : pattern) approach =
  let th = p.device_thread in
  let first_is_load = p.from_ = Advisor.From_load in
  let second_is_store = p.to_ = Advisor.To_store in
  let first_reg =
    match List.nth (List.nth p.base.Lang.threads th) 0 with
    | Lang.Load { reg; _ } -> Some reg
    | _ -> None
  in
  match approach with
  | Ordering.Bar (Barrier.Dmb Full) ->
    Some (P.Insert_fence { thread = th; pos = 1; fence = Lang.F_dmb_full })
  | Ordering.Bar (Barrier.Dmb St) ->
    Some (P.Insert_fence { thread = th; pos = 1; fence = Lang.F_dmb_st })
  | Ordering.Bar (Barrier.Dmb Ld) ->
    Some (P.Insert_fence { thread = th; pos = 1; fence = Lang.F_dmb_ld })
  | Ordering.Bar (Barrier.Dsb Full) ->
    Some (P.Insert_fence { thread = th; pos = 1; fence = Lang.F_dsb })
  | Ordering.Ctrl_isb when first_is_load ->
    Some (P.Insert_fence { thread = th; pos = 1; fence = Lang.F_isb })
  | Ordering.Ldar_acquire when first_is_load ->
    Some (P.Make_acquire { thread = th; idx = 0 })
  | Ordering.Stlr_release when second_is_store ->
    Some (P.Make_release { thread = th; idx = 1 })
  | Ordering.Addr_dep when first_is_load -> (
    match first_reg with
    | Some reg -> Some (P.Add_addr_dep { thread = th; idx = 1; reg })
    | None -> None)
  | _ -> None

let test_advisor_agrees_with_enumerator () =
  List.iter
    (fun p ->
      check Alcotest.bool (p.pat_name ^ ": weak outcome reachable bare") true
        (allows p.base);
      List.iter
        (fun approach ->
          match edit_of_approach p approach with
          | None -> ()
          | Some e ->
            let armed = P.apply p.base [ e ] in
            let enum_sufficient = not (allows armed) in
            let advisor_sufficient =
              Advisor.sufficient approach ~from_:p.from_ ~to_:p.to_
            in
            if enum_sufficient <> advisor_sufficient then
              Alcotest.failf "%s with %s: enumerator says %b, advisor says %b"
                p.pat_name (Ordering.to_string approach) enum_sufficient
                advisor_sufficient)
        approaches)
    patterns

(* ---------- search ---------- *)

let test_search_minimal_on_mp () =
  let stripped = Mut.strip_order ~keep_values:true Cat.mp_dmb in
  let s = Search.search stripped in
  check Alcotest.bool "search complete" true s.Search.complete;
  check Alcotest.bool "found repairs" true (s.Search.repairs <> []);
  List.iter
    (fun set ->
      if not (Search.irredundant ~sound:Search.default_sound stripped set) then
        Alcotest.failf "redundant repair [%s]"
          (String.concat "; " (List.map (P.edit_to_string stripped) set)))
    s.Search.repairs;
  (* the hand-written fencing must be among the minimal repairs *)
  let reconstruction =
    [
      P.Insert_fence { thread = 0; pos = 1; fence = Lang.F_dmb_st };
      P.Insert_fence { thread = 1; pos = 1; fence = Lang.F_dmb_ld };
    ]
  in
  check Alcotest.bool "hand fencing rediscovered" true
    (List.exists
       (fun set -> List.sort compare set = List.sort compare reconstruction)
       s.Search.repairs)

let test_search_single_edit_on_wrc () =
  let stripped = Mut.strip_order ~keep_values:true Cat.wrc in
  let s = Search.search stripped in
  check Alcotest.bool "search complete" true s.Search.complete;
  (* the reader's lost address dependency comes back as a 1-edit fix *)
  check Alcotest.bool "single-edit repair exists" true
    (List.exists (fun set -> List.length set = 1) s.Search.repairs)

(* ---------- pilot rewrite ---------- *)

let test_pilot_detects_mp () =
  List.iter
    (fun (t : Lang.test) ->
      match Pilot.rewrite (Mut.strip_order ~keep_values:true t) with
      | None -> Alcotest.failf "%s: MP shape not detected" t.Lang.name
      | Some (_, rewritten) ->
        check Alcotest.bool (t.Lang.name ^ ": rewrite sound") false (allows rewritten);
        check Alcotest.int
          (t.Lang.name ^ ": single shared word")
          1
          (List.length rewritten.Lang.init))
    [ Cat.mp_dmb; Cat.mp_acq_rel; Cat.mp_addr_dep ]

let test_pilot_rejects_non_mp () =
  List.iter
    (fun (t : Lang.test) ->
      match Pilot.detect t with
      | Some _ -> Alcotest.failf "%s: claimed MP-shaped" t.Lang.name
      | None -> ())
    [ Cat.sb; Cat.lb; Cat.coherence; Cat.two_plus_two_w ];
  (* right shape, wrong question: predicate probing must reject *)
  let not_mp = { Cat.mp with Lang.interesting = (fun o -> o "1:r2" = 23L) } in
  check Alcotest.bool "wrong predicate rejected" true (Pilot.detect not_mp = None);
  (* values that do not fit 32 bits cannot be packed *)
  let wide =
    {
      Cat.mp with
      Lang.threads =
        [
          [ Lang.st "data" 0x1_0000_0000L; Lang.st "flag" 1L ];
          [ Lang.ld "flag" "r1"; Lang.ld "data" "r2" ];
        ];
      interesting = (fun o -> o "1:r1" = 1L && o "1:r2" <> 0x1_0000_0000L);
    }
  in
  check Alcotest.bool "wide values rejected" true (Pilot.detect wide = None)

(* ---------- catalogue round trips (the acceptance bar) ---------- *)

let test_catalogue_round_trips () =
  let rts = Fix.catalogue_round_trips ~trials:30 () in
  check Alcotest.bool "several eligible tests" true (List.length rts >= 5);
  List.iter
    (fun (rt : Fix.round_trip) ->
      if not rt.ok then
        Alcotest.failf "%s: sufficient:%b irredundant:%b cost:%b pilot:%b" rt.test_name
          rt.sufficient_ok rt.irredundant_ok rt.cost_ok rt.pilot_ok)
    rts;
  (* every MP-shaped test must be won by the Pilot rewrite *)
  let mp_rts =
    List.filter (fun (rt : Fix.round_trip) -> rt.pilot_expected) rts
  in
  check Alcotest.bool "MP-shaped round trips present" true (List.length mp_rts >= 3);
  List.iter
    (fun (rt : Fix.round_trip) ->
      List.iter
        (fun (platform, (r : Fix.repair)) ->
          if r.kind <> Fix.Pilot then
            Alcotest.failf "%s on %s: winner is %s, not pilot" rt.test_name platform
              r.label)
        rt.outcome.winners)
    mp_rts

let test_cost_deterministic () =
  let a = Cost.measure ~trials:20 Cat.mp_dmb in
  let b = Cost.measure ~trials:20 Cat.mp_dmb in
  check Alcotest.bool "same program, same cost" true (a = b);
  List.iter
    (fun (c : Cost.platform_cost) ->
      if c.cycles <= 0.0 then Alcotest.failf "%s: non-positive cost" c.platform)
    a

(* ---------- fuzz-repair soak ---------- *)

let test_soak () =
  let r = Soak.run ~tests:15 () in
  if not (Soak.ok r) then
    Alcotest.failf "soak failures: %s" (String.concat " | " r.Soak.failures);
  check Alcotest.bool "repair path exercised" true (r.Soak.repaired >= 1)

let () =
  Alcotest.run "armb_synth"
    [
      ( "mutate",
        [
          Alcotest.test_case "strip keep-values" `Quick test_strip_keep_values;
          Alcotest.test_case "point edits" `Quick test_mutate_point_edits;
        ] );
      ( "isb",
        [
          Alcotest.test_case "enumerator" `Quick test_isb_enumerator;
          Alcotest.test_case "no store order" `Quick test_isb_no_store_order;
          Alcotest.test_case "sim and sanitizer" `Quick test_isb_sim_and_sanitizer;
        ] );
      ( "placement",
        [
          Alcotest.test_case "apply reconstructs" `Quick test_apply_reconstructs;
          Alcotest.test_case "value neutral" `Quick test_candidates_value_neutral;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "agrees with enumerator" `Quick
            test_advisor_agrees_with_enumerator;
        ] );
      ( "search",
        [
          Alcotest.test_case "minimal on MP" `Quick test_search_minimal_on_mp;
          Alcotest.test_case "single edit on WRC" `Quick test_search_single_edit_on_wrc;
        ] );
      ( "pilot",
        [
          Alcotest.test_case "detects MP" `Quick test_pilot_detects_mp;
          Alcotest.test_case "rejects non-MP" `Quick test_pilot_rejects_non_mp;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "catalogue" `Quick test_catalogue_round_trips;
          Alcotest.test_case "cost deterministic" `Quick test_cost_deterministic;
        ] );
      ("soak", [ Alcotest.test_case "fuzz repair" `Quick test_soak ]);
    ]
