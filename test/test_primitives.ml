(* The unified primitives layer: one canonical implementation per
   protocol, instantiated by the simulator (int64 machine words, Core
   effects) and the native runtime (immediate ints, Atomics).  These
   tests pin the properties the unification must preserve: the two
   Pilot codecs draw the same shuffle stream, the delegation payload
   encoding agrees across widths, the protocol functors behave, and
   Run_config validates the knobs every front end shares. *)

module Pilot64 = Armb_core.Pilot
module PilotInt = Armb_runtime.Pilot_codec
module D = Armb_primitives.Delegation

(* ---------- pilot codec ---------- *)

(* Both instances project the same seeded SplitMix64 stream: the int
   pool must be the int64 pool shifted down two bits. *)
let pilot_pools_share_stream () =
  let p64 = Pilot64.make_pool ~size:32 ~seed:11 () in
  let pint = PilotInt.make_pool ~size:32 ~seed:11 () in
  Alcotest.(check int) "pool sizes" (Array.length p64) (Array.length pint);
  Array.iteri
    (fun i v64 ->
      Alcotest.(check int)
        (Printf.sprintf "pool[%d] projects" i)
        (Int64.to_int (Int64.shift_right_logical v64 2))
        pint.(i))
    p64

(* Channel round-trip through simulated shared words: every message
   decodes to itself, in order, via either the data store or the flag
   fallback. *)
let pilot_roundtrip () =
  let pool = Pilot64.make_pool ~seed:3 () in
  let s = Pilot64.sender pool and r = Pilot64.receiver pool in
  let data = ref 0L and flag = ref 0L in
  let msgs = [ 1L; 5L; 5L; 5L; 0L; 0L; 123456789L; Int64.min_int ] in
  List.iter
    (fun m ->
      (match Pilot64.encode s m with
      | Pilot64.Write_data v -> data := v
      | Pilot64.Toggle_flag -> flag := Int64.logxor !flag 1L);
      match Pilot64.try_decode r ~data:!data ~flag:!flag with
      | Some got -> Alcotest.(check int64) "message" m got
      | None -> Alcotest.fail (Printf.sprintf "message %Ld not detected" m))
    msgs;
  Alcotest.(check int) "sent" (List.length msgs) (Pilot64.sent s);
  Alcotest.(check int) "received" (List.length msgs) (Pilot64.received r);
  (* no message pending: the decoder must not invent one *)
  match Pilot64.try_decode r ~data:!data ~flag:!flag with
  | None -> ()
  | Some v -> Alcotest.fail (Printf.sprintf "phantom message %Ld" v)

let pilot_int_roundtrip () =
  let pool = PilotInt.make_pool ~seed:3 () in
  let s = PilotInt.sender pool and r = PilotInt.receiver pool in
  let data = ref 0 and flag = ref 0 in
  List.iter
    (fun m ->
      (match PilotInt.encode s m with
      | PilotInt.Write_data v -> data := v
      | PilotInt.Toggle_flag -> flag := !flag lxor 1);
      match PilotInt.try_decode r ~data:!data ~flag:!flag with
      | Some got -> Alcotest.(check int) "message" m got
      | None -> Alcotest.fail (Printf.sprintf "message %d not detected" m))
    [ 7; 7; 7; 0; 0; max_int; 42 ]

(* ---------- delegation payload ---------- *)

let delegation_roundtrip () =
  Alcotest.(check int) "waiting" 0 D.Over_int.waiting;
  Alcotest.(check int) "handoff" 1 D.Over_int.handoff;
  Alcotest.(check bool) "handoff detected" true (D.Over_int.is_handoff D.Over_int.handoff);
  Alcotest.(check bool) "completed is not handoff" false
    (D.Over_int.is_handoff (D.Over_int.pack ~ret:9 ~completed:true));
  List.iter
    (fun ret ->
      let ret64 = Int64.of_int ret in
      let p = D.Over_int.pack ~ret ~completed:true in
      let p64 = D.Over_int64.pack ~ret:ret64 ~completed:true in
      (* the two widths agree bit-for-bit on in-range payloads *)
      Alcotest.(check int64) "cross-width pack" (Int64.of_int p) p64;
      let r, c = D.Over_int.unpack p in
      Alcotest.(check int) "ret" ret r;
      Alcotest.(check bool) "completed" true c;
      let r64, c64 = D.Over_int64.unpack p64 in
      Alcotest.(check int64) "ret64" ret64 r64;
      Alcotest.(check bool) "completed64" true c64)
    [ 0; 1; 7; 1000; (1 lsl 40) - 1 ];
  (* a handoff unpacks as not-completed *)
  let _, c = D.Over_int64.unpack D.Over_int64.handoff in
  Alcotest.(check bool) "handoff not completed" false c

(* ---------- native protocol instances ---------- *)

let native_seqlock () =
  let sl = Armb_runtime.Seqlock.create ~words:4 in
  Armb_runtime.Seqlock.write sl [| 1; 2; 3; 4 |];
  Alcotest.(check (array int)) "snapshot" [| 1; 2; 3; 4 |] (Armb_runtime.Seqlock.read sl);
  Armb_runtime.Seqlock.write sl [| 5; 6; 7; 8 |];
  Alcotest.(check (array int)) "second snapshot" [| 5; 6; 7; 8 |] (Armb_runtime.Seqlock.read sl);
  Alcotest.(check int) "writes counted" 2 (Armb_runtime.Seqlock.writes sl);
  match Armb_runtime.Seqlock.write sl [| 1 |] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "arity mismatch accepted"

let native_ticket_lock () =
  let t = Armb_runtime.Ticket_lock.create () in
  let hits = ref 0 in
  for _ = 1 to 5 do
    Armb_runtime.Ticket_lock.with_lock t (fun () -> incr hits)
  done;
  Alcotest.(check int) "bodies ran" 5 !hits;
  Alcotest.(check int) "holders served" 5 (Armb_runtime.Ticket_lock.holders_served t)

(* ---------- run config ---------- *)

let run_config () =
  let module RC = Armb_platform.Run_config in
  let cfg = Armb_platform.Platform.kunpeng916 in
  let rc = RC.make cfg in
  let n = Armb_mem.Topology.num_cores cfg.Armb_cpu.Config.topo in
  Alcotest.(check (pair int int)) "default cross placement" (0, n / 2) rc.RC.cores;
  Alcotest.(check int) "default seed" 42 rc.RC.seed;
  Alcotest.(check int) "default trials" 300 rc.RC.trials;
  Alcotest.(check (list int)) "core list" [ 0; n / 2 ] (RC.core_list rc);
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ " accepted")
  in
  rejects "out-of-range core" (fun () -> RC.make ~cores:(0, n) cfg);
  rejects "negative core" (fun () -> RC.make ~cores:(-1, 2) cfg);
  rejects "identical cores" (fun () -> RC.make ~cores:(3, 3) cfg);
  rejects "zero trials" (fun () -> RC.make ~trials:0 cfg);
  rejects "negative seed" (fun () -> RC.make ~seed:(-1) cfg)

let () =
  Alcotest.run "primitives"
    [
      ( "pilot",
        [
          Alcotest.test_case "pools share the seeded stream" `Quick pilot_pools_share_stream;
          Alcotest.test_case "int64 channel round-trip" `Quick pilot_roundtrip;
          Alcotest.test_case "int channel round-trip" `Quick pilot_int_roundtrip;
        ] );
      ( "delegation",
        [ Alcotest.test_case "payload encoding across widths" `Quick delegation_roundtrip ] );
      ( "native-protocols",
        [
          Alcotest.test_case "seqlock publishes snapshots" `Quick native_seqlock;
          Alcotest.test_case "ticket lock serializes" `Quick native_ticket_lock;
        ] );
      ("run-config", [ Alcotest.test_case "defaults and validation" `Quick run_config ]);
    ]
