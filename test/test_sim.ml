(* Tests for the simulation kernel: heap, event queue, RNG, statistics,
   result tables. *)

open Armb_sim

let check = Alcotest.check

(* ---------- Heap ---------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k k) [ 5; 3; 9; 1; 7; 3; 0; 42 ];
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, v) ->
      check Alcotest.int "key = value" k v;
      popped := k :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted ascending" [ 0; 1; 3; 3; 5; 7; 9; 42 ]
    (List.rev !popped)

let test_heap_empty () =
  let h = Heap.create () in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  check (Alcotest.option Alcotest.int) "peek none" None (Heap.peek_key h);
  check Alcotest.bool "pop none" true (Heap.pop h = None)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.add h ~key:1 "a";
  Heap.add h ~key:2 "b";
  Heap.clear h;
  check Alcotest.int "length 0" 0 (Heap.length h);
  Heap.add h ~key:3 "c";
  check Alcotest.bool "usable after clear" true (Heap.pop h = Some (3, "c"))

let test_heap_growth () =
  let h = Heap.create ~capacity:2 () in
  for i = 1000 downto 1 do
    Heap.add h ~key:i i
  done;
  check Alcotest.int "length" 1000 (Heap.length h);
  check (Alcotest.option Alcotest.int) "min" (Some 1) (Heap.peek_key h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops any int list in sorted order" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.add h ~key:k ()) l;
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare l)

(* ---------- Event queue ---------- *)

let test_eq_time_order () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.schedule q ~at:30 (fun () -> log := 30 :: !log);
  Event_queue.schedule q ~at:10 (fun () -> log := 10 :: !log);
  Event_queue.schedule q ~at:20 (fun () -> log := 20 :: !log);
  Event_queue.run q;
  check (Alcotest.list Alcotest.int) "time order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Event_queue.now q)

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Event_queue.schedule q ~at:5 (fun () -> log := i :: !log)
  done;
  Event_queue.run q;
  check (Alcotest.list Alcotest.int) "insertion order at equal times"
    (List.init 10 Fun.id) (List.rev !log)

let test_eq_past_clamped () =
  let q = Event_queue.create () in
  let fired_at = ref (-1) in
  Event_queue.schedule q ~at:100 (fun () ->
      Event_queue.schedule q ~at:5 (fun () -> fired_at := Event_queue.now q));
  Event_queue.run q;
  check Alcotest.int "past event clamped to now" 100 !fired_at

let test_eq_cascade () =
  let q = Event_queue.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Event_queue.schedule_in q ~delay:2 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 50;
  Event_queue.run q;
  check Alcotest.int "all chained events fired" 50 !count;
  check Alcotest.int "clock advanced by 2 each" 100 (Event_queue.now q);
  check Alcotest.int "processed count" 50 (Event_queue.processed q)

let test_eq_until () =
  let q = Event_queue.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Event_queue.schedule q ~at:(i * 10) (fun () -> incr fired)
  done;
  Event_queue.run ~until:55 q;
  check Alcotest.int "only events <= 55" 5 !fired;
  check Alcotest.int "rest pending" 5 (Event_queue.pending q);
  check Alcotest.int "clock advanced to until" 55 (Event_queue.now q)

let test_eq_until_empty_queue () =
  (* Draining early still advances the clock to [until]: simulated time
     passes even when nothing is scheduled in it. *)
  let q = Event_queue.create () in
  Event_queue.schedule q ~at:10 ignore;
  Event_queue.run ~until:100 q;
  check Alcotest.int "clock at until after drain" 100 (Event_queue.now q);
  (* ... but a [max_events] stop leaves the clock at the last event. *)
  let q2 = Event_queue.create () in
  Event_queue.schedule q2 ~at:10 ignore;
  Event_queue.schedule q2 ~at:20 ignore;
  Event_queue.run ~until:100 ~max_events:1 q2;
  check Alcotest.int "clock at last event on budget stop" 10 (Event_queue.now q2)

(* Every event must fire in strictly increasing (time, insertion) order,
   whatever mix of scheduling, partial pops and same-cycle reentrant
   scheduling produced it — the packed-heap-key invariant. *)
let prop_eq_fifo_order =
  QCheck.Test.make ~name:"event queue fires in (time, insertion) order" ~count:300
    QCheck.(list (pair (int_range 0 40) (int_range 0 3)))
    (fun cmds ->
      let q = Event_queue.create () in
      let fired = ref [] in
      let counter = ref 0 in
      let rec sched at reentrant =
        let idx = !counter in
        incr counter;
        Event_queue.schedule q ~at (fun () ->
            fired := (Event_queue.now q, idx) :: !fired;
            if reentrant > 0 then sched (Event_queue.now q) (reentrant - 1))
      in
      List.iter
        (fun (at, action) ->
          match action with
          | 0 -> sched at 0
          | 1 -> sched at 2 (* fires two more at its own cycle *)
          | 2 -> ignore (Event_queue.run_next q)
          | _ ->
            sched at 0;
            sched at 0)
        cmds;
      Event_queue.run q;
      let order = List.rev !fired in
      let rec strictly_sorted = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && strictly_sorted rest
        | _ -> true
      in
      strictly_sorted order && List.length order = !counter)

(* Hundreds of cores posting at one timestamp — the immediate-ring fast
   path: a burst scheduled from inside an event at its own cycle must
   drain in FIFO order across several ring growths (initial capacity is
   64), finish before anything at a later time, and interleave correctly
   with heap-resident future events. *)
let test_eq_same_cycle_burst () =
  let q = Event_queue.create () in
  let log = ref [] in
  let burst = 512 in
  Event_queue.schedule q ~at:50 (fun () ->
      for i = 0 to burst - 1 do
        Event_queue.schedule q ~at:50 (fun () ->
            log := i :: !log;
            (* reentrant same-cycle scheduling from a ring event *)
            if i < 8 then
              Event_queue.schedule q ~at:50 (fun () -> log := (burst + i) :: !log))
      done);
  let after_burst = ref (-1) in
  Event_queue.schedule q ~at:51 (fun () -> after_burst := List.length !log);
  Event_queue.run q;
  let expect = List.init burst Fun.id @ List.init 8 (fun i -> burst + i) in
  check (Alcotest.list Alcotest.int) "FIFO across ring growth" expect (List.rev !log);
  check Alcotest.int "later event fires after the whole burst" (burst + 8) !after_burst;
  check Alcotest.int "nothing pending" 0 (Event_queue.pending q)

(* Push the per-queue sequence counter past its 24-bit field so the
   pending events get renumbered, and check ordering still holds. *)
let test_eq_seq_renumber () =
  let q = Event_queue.create () in
  let fired = ref 0 in
  let last = ref (-1) in
  let n = (1 lsl 24) + 5000 in
  let fire () =
    incr fired;
    let t = Event_queue.now q in
    if t < !last then Alcotest.failf "time went backwards: %d after %d" t !last;
    last := t
  in
  for i = 0 to n - 1 do
    Event_queue.schedule q ~at:(i / 64) fire;
    (* Pop all but every 1024th event so the pending set stays small
       (renumbering is triggered by the sequence counter, not by queue
       depth) while still leaving real events to renumber. *)
    if i land 1023 <> 0 then ignore (Event_queue.run_next q)
  done;
  Event_queue.run q;
  check Alcotest.int "all events fired across renumbering" n !fired

(* ---------- RNG ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check Alcotest.bool "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 c in
  check Alcotest.bool "split streams differ" true (x <> y)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in stays in [lo, hi]" ~count:500
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let r = Rng.create seed in
      let v = Rng.int_in r lo (lo + span) in
      v >= lo && v <= lo + span)

let test_rng_shuffle_permutes () =
  let r = Rng.create 9 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 100 Fun.id) sorted

let test_rng_float_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of range"
  done

(* ---------- Stats ---------- *)

let test_stats_mean_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  (* sample stddev of that classic set is ~2.138 *)
  check (Alcotest.float 0.01) "stddev" 2.138 (Stats.stddev s);
  let sm = Stats.summary s in
  check (Alcotest.float 1e-9) "min" 2.0 sm.Stats.min;
  check (Alcotest.float 1e-9) "max" 9.0 sm.Stats.max;
  check Alcotest.int "n" 8 sm.Stats.n

let test_stats_empty () =
  let s = Stats.create () in
  let sm = Stats.summary s in
  check Alcotest.int "n" 0 sm.Stats.n;
  check (Alcotest.float 1e-9) "stddev 0" 0.0 sm.Stats.stddev

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 5;
  check Alcotest.int "value" 6 (Stats.Counter.get c);
  Stats.Counter.reset c;
  check Alcotest.int "reset" 0 (Stats.Counter.get c)

let test_histogram () =
  let h = Stats.Histogram.create ~bucket_width:10 ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 1; 5; 15; 25; 95; 1000 ];
  check Alcotest.int "total" 6 (Stats.Histogram.total h);
  check Alcotest.int "bucket 0" 2 (Stats.Histogram.bucket_count h 0);
  check Alcotest.int "overflow" 1 (Stats.Histogram.bucket_count h 10);
  check Alcotest.bool "p50 <= p99" true
    (Stats.Histogram.percentile h 0.5 <= Stats.Histogram.percentile h 0.99)

let test_percentile_edges () =
  let h = Stats.Histogram.create ~bucket_width:10 ~buckets:10 in
  check Alcotest.int "empty histogram" 0 (Stats.Histogram.percentile h 0.5);
  (* all mass in bucket 2: q = 0 must skip the empty leading buckets
     rather than reporting the edge of bucket 0 *)
  List.iter (Stats.Histogram.add h) [ 25; 27 ];
  check Alcotest.int "q=0 is lower bound of first non-empty bucket" 20
    (Stats.Histogram.percentile h 0.0);
  check Alcotest.int "q=1 is upper bound of the occupied bucket" 30
    (Stats.Histogram.percentile h 1.0);
  (* a quantile landing in the overflow slot reports the recorded
     maximum, not a fictitious finite bucket edge *)
  Stats.Histogram.add h 1234;
  check Alcotest.int "overflow quantile reports max sample" 1234
    (Stats.Histogram.percentile h 1.0);
  check Alcotest.int "low quantiles unaffected by overflow" 30
    (Stats.Histogram.percentile h 0.5)

let test_throughput () =
  check (Alcotest.float 1.0) "1000 ops in 1000 cycles at 1 GHz"
    1e9
    (Stats.throughput_per_sec ~ops:1000 ~cycles:1000 ~freq_ghz:1.0);
  check (Alcotest.float 1e-9) "zero cycles" 0.0
    (Stats.throughput_per_sec ~ops:10 ~cycles:0 ~freq_ghz:1.0)

(* ---------- Series ---------- *)

let sample_table () =
  Series.make ~title:"t" ~unit_label:"u" ~cols:[ "a"; "b" ]
    [ ("r1", [ 1.0; 2.0 ]); ("r2", [ 3.0; 4.0 ]) ]

let test_series_cell () =
  let t = sample_table () in
  check (Alcotest.float 1e-9) "cell" 4.0 (Series.cell t ~row:"r2" ~col:"b")

let test_series_normalize () =
  let t = Series.normalize_to (sample_table ()) ~row:"r1" in
  check (Alcotest.float 1e-9) "normalized" 3.0 (Series.cell t ~row:"r2" ~col:"a");
  check (Alcotest.float 1e-9) "base row is ones" 1.0 (Series.cell t ~row:"r1" ~col:"b")

let test_series_mismatched_row () =
  Alcotest.check_raises "row width validated"
    (Invalid_argument "Series.make: row \"bad\" has 1 cells, expected 2")
    (fun () -> ignore (Series.make ~title:"x" ~unit_label:"u" ~cols:[ "a"; "b" ] [ ("bad", [ 1.0 ]) ]))

let test_series_csv () =
  let csv = Series.csv (sample_table ()) in
  check Alcotest.bool "header present" true (String.length csv > 0);
  check Alcotest.bool "has r2 line" true
    (String.split_on_char '\n' csv |> List.exists (fun l -> l = "r2,3,4"))

let () =
  Alcotest.run "armb_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "pops in key order" `Quick test_heap_order;
          Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "event-queue",
        [
          Alcotest.test_case "time order" `Quick test_eq_time_order;
          Alcotest.test_case "FIFO tie-break" `Quick test_eq_fifo_ties;
          Alcotest.test_case "past events clamp to now" `Quick test_eq_past_clamped;
          Alcotest.test_case "cascading schedules" `Quick test_eq_cascade;
          Alcotest.test_case "run ~until" `Quick test_eq_until;
          Alcotest.test_case "run ~until advances clock on drain" `Quick
            test_eq_until_empty_queue;
          Alcotest.test_case "same-cycle burst (ring path)" `Quick test_eq_same_cycle_burst;
          QCheck_alcotest.to_alcotest prop_eq_fifo_order;
          Alcotest.test_case "sequence renumbering" `Slow test_eq_seq_renumber;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          QCheck_alcotest.to_alcotest prop_rng_int_bounds;
          QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "empty summary" `Quick test_stats_empty;
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
          Alcotest.test_case "throughput" `Quick test_throughput;
        ] );
      ( "series",
        [
          Alcotest.test_case "cell lookup" `Quick test_series_cell;
          Alcotest.test_case "normalize" `Quick test_series_normalize;
          Alcotest.test_case "row width validation" `Quick test_series_mismatched_row;
          Alcotest.test_case "csv rendering" `Quick test_series_csv;
        ] );
    ]
