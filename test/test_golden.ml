(* Differential determinism gate for the simulation kernel.

   Canonical renderings of representative workloads — figure slices,
   litmus histograms, sanitizer verdicts, SPSC ring timings and a fuzz
   round — are digested and compared against goldens captured from the
   seed kernel.  Any kernel change that alters simulation results,
   event ordering or RNG consumption trips this gate: performance work
   on the event queue, memory system or CPU model must be bit-identical.

   To regenerate after an *intentional* semantic change, run the test
   binary with ARMB_GOLDEN_PRINT=<file>: it appends "name digest" lines
   there instead of asserting.  Paste the new digests below and explain
   the semantic change in the commit message. *)

module AM = Armb_core.Abstracted_model
module Barrier = Armb_cpu.Barrier
module Catalogue = Armb_litmus.Catalogue
module Fuzz = Armb_litmus.Fuzz
module Lang = Armb_litmus.Lang
module Ordering = Armb_core.Ordering
module P = Armb_platform.Platform
module Sim = Armb_litmus.Sim_runner
module Spsc = Armb_sync.Spsc_ring

let kunpeng = P.kunpeng916
let cross = Armb_mem.Topology.num_cores kunpeng.Armb_cpu.Config.topo / 2

(* ---------- canonical texts ---------- *)

(* Exact cycle counts of an abstracted-model sweep slice: covers loads,
   stores, barriers, LDAR/STLR, dependencies and both NUMA placements. *)
let fig3_text () =
  let b = Buffer.create 1024 in
  let emit mem_ops (aname, approach, location) cores nops =
    let spec =
      { (AM.default_spec kunpeng) with cores; mem_ops; approach; location; nops; iters = 300 }
    in
    if AM.valid spec then
      Buffer.add_string b
        (Printf.sprintf "%s %s (%d,%d) nops=%d cycles=%d\n"
           (match mem_ops with
           | AM.No_mem -> "no-mem"
           | AM.Store_store -> "st-st"
           | AM.Load_store -> "ld-st"
           | AM.Load_load -> "ld-ld")
           aname (fst cores) (snd cores) nops (AM.run_cycles spec))
  in
  let store_approaches =
    [
      ("none", Ordering.No_barrier, AM.Loc1);
      ("dmb-full-1", Ordering.Bar (Barrier.Dmb Full), AM.Loc1);
      ("dmb-full-2", Ordering.Bar (Barrier.Dmb Full), AM.Loc2);
      ("dmb-st-1", Ordering.Bar (Barrier.Dmb St), AM.Loc1);
      ("dsb-full-1", Ordering.Bar (Barrier.Dsb Full), AM.Loc1);
      ("stlr", Ordering.Stlr_release, AM.Loc1);
    ]
  in
  let load_approaches =
    [
      ("dmb-ld-1", Ordering.Bar (Barrier.Dmb Ld), AM.Loc1);
      ("ldar", Ordering.Ldar_acquire, AM.Loc1);
      ("data-dep", Ordering.Data_dep, AM.Loc1);
      ("addr-dep", Ordering.Addr_dep, AM.Loc1);
      ("ctrl-isb", Ordering.Ctrl_isb, AM.Loc1);
    ]
  in
  List.iter
    (fun cores ->
      List.iter
        (fun nops ->
          List.iter (fun a -> emit AM.Store_store a cores nops) store_approaches;
          List.iter (fun a -> emit AM.Load_store a cores nops) load_approaches;
          emit AM.No_mem ("dmb-full-1", Ordering.Bar (Barrier.Dmb Full), AM.Loc1) cores nops;
          emit AM.Load_load ("ldar", Ordering.Ldar_acquire, AM.Loc1) cores nops)
        [ 100; 500 ])
    [ (0, 4); (0, cross) ];
  Buffer.contents b

(* Outcome histograms of the whole litmus catalogue at a fixed seed. *)
let litmus_text () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (t : Lang.test) ->
      let r = Sim.run ~trials:40 ~seed:42 t in
      Buffer.add_string b
        (Printf.sprintf "%s witnessed=%b\n" t.name r.Sim.interesting_witnessed);
      List.iter
        (fun (o, n) -> Buffer.add_string b (Printf.sprintf "  %d %s\n" n o))
        r.Sim.outcomes)
    Catalogue.all;
  Buffer.contents b

(* Sanitizer verdicts over the catalogue (base + order-stripped). *)
let sanitizer_text () =
  let rows, ok = Sim.cross_check ~trials:12 ~seed:5 () in
  let b = Buffer.create 512 in
  List.iter
    (fun r -> Buffer.add_string b (Format.asprintf "%a\n" Sim.pp_check_row r))
    rows;
  Buffer.add_string b (Printf.sprintf "ok=%b\n" ok);
  Buffer.contents b

(* SPSC ring: exact makespans and traffic counters per combination. *)
let ring_text () =
  let b = Buffer.create 512 in
  List.iter
    (fun combo ->
      let spec =
        { (Spsc.default_spec kunpeng ~cores:(0, cross)) with
          messages = 500;
          barriers = Spsc.combo combo;
        }
      in
      let r = Spsc.run spec in
      Buffer.add_string b
        (Format.asprintf "%s cycles=%d %a\n" combo r.Spsc.cycles
           Armb_mem.Memsys.pp_counters r.Spsc.lines_touched))
    [ "DMB full - DMB full"; "DMB ld - DMB st"; "LDAR - DMB st"; "DMB ld - No Barrier" ];
  Buffer.contents b

(* A differential fuzz round: RNG consumption, generated programs and
   simulated outcomes all feed the digest. *)
let fuzz_text () =
  let r = Fuzz.run ~tests:10 ~trials_per_test:25 ~seed:7 () in
  Format.asprintf "%a@." Fuzz.pp_report r

(* ---------- goldens (captured from the seed kernel) ---------- *)

let expected =
  [
    ("fig3-slice", "f184f26dd571876913e3eb2d736ea7ca");
    ("litmus-catalogue", "0328c3ae1b1e9ad15ce1cb2da7aab167");
    ("sanitizer-verdicts", "1dccbc877ec11eea149d36edd7e22189");
    ("spsc-ring", "98d7af687535a82f397ce19c55218635");
    ("fuzz-round", "929108fb4b9ca4066ad8de43298a4211");
  ]

let texts =
  [
    ("fig3-slice", fig3_text);
    ("litmus-catalogue", litmus_text);
    ("sanitizer-verdicts", sanitizer_text);
    ("spsc-ring", ring_text);
    ("fuzz-round", fuzz_text);
  ]

let golden name () =
  let text = (List.assoc name texts) () in
  let digest = Digest.to_hex (Digest.string text) in
  match Sys.getenv_opt "ARMB_GOLDEN_PRINT" with
  | Some file ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
    Printf.fprintf oc "%s %s\n" name digest;
    close_out oc
  | None ->
    let want = List.assoc name expected in
    if digest <> want then begin
      (* dump the canonical text so the diff is inspectable in the log *)
      Printf.printf "--- canonical %s ---\n%s--- end %s ---\n" name text name;
      Alcotest.failf "golden digest mismatch for %s: expected %s, got %s" name want digest
    end

let () =
  Alcotest.run "armb_golden"
    [
      ( "determinism",
        List.map
          (fun (name, _) -> Alcotest.test_case name `Quick (golden name))
          expected );
    ]
