(* Differential test for the memory-system rewrite: the open-addressed,
   mask-classified [Armb_mem.Memsys] must be operation-for-operation
   identical to the seed implementation.  The seed version (Hashtbl
   storage, per-sharer distance loops) is embedded below as the
   executable specification and both are driven with the same random
   traces. *)

open Alcotest
module Topology = Armb_mem.Topology
module Latency = Armb_mem.Latency
module Memsys = Armb_mem.Memsys
module Rng = Armb_sim.Rng

(* ---------- Reference: the seed memory system, verbatim ---------- *)

module Ref = struct
  type access = { latency : int; cross_node : bool; hit : bool }

  type line = {
    mutable owner : int;
    mutable sharers : int;
    mutable busy_until : int;
    mutable ready_at : int;
    mutable pending_writer : int;
    mutable pending_until : int;
  }

  type t = {
    topo : Topology.t;
    lat : Latency.t;
    lines : (int, line) Hashtbl.t;
    values : (int, int64) Hashtbl.t;
    mutable c_hits : int;
    mutable c_transfers : int;
    mutable c_cross : int;
    mutable c_dram : int;
    mutable c_inval : int;
  }

  let create ~topo ~lat =
    {
      topo;
      lat;
      lines = Hashtbl.create 4096;
      values = Hashtbl.create 4096;
      c_hits = 0;
      c_transfers = 0;
      c_cross = 0;
      c_dram = 0;
      c_inval = 0;
    }

  let line_of addr = addr lsr 6

  let line t addr =
    let idx = line_of addr in
    match Hashtbl.find_opt t.lines idx with
    | Some l -> l
    | None ->
      let l =
        {
          owner = -1;
          sharers = 0;
          busy_until = 0;
          ready_at = 0;
          pending_writer = -1;
          pending_until = 0;
        }
      in
      Hashtbl.add t.lines idx l;
      l

  let bit c = 1 lsl c

  let iter_mask mask f =
    let m = ref mask and c = ref 0 in
    while !m <> 0 do
      if !m land 1 = 1 then f !c;
      incr c;
      m := !m lsr 1
    done

  let worst_distance t core mask =
    let worst = ref Topology.Same_core in
    let rank = function
      | Topology.Same_core -> 0
      | Topology.Same_cluster -> 1
      | Topology.Same_node -> 2
      | Topology.Cross_node -> 3
    in
    iter_mask mask (fun c ->
        if c <> core then
          let d = Topology.distance t.topo core c in
          if rank d > rank !worst then worst := d);
    !worst

  let serialize l ~now lat_cycles =
    let start = max now l.busy_until in
    l.busy_until <- start + lat_cycles;
    start - now + lat_cycles

  let read t ~now ~core ~addr =
    let l = line t addr in
    if l.sharers land bit core <> 0 then begin
      t.c_hits <- t.c_hits + 1;
      { latency = max t.lat.l1_hit (l.ready_at - now); cross_node = false; hit = true }
    end
    else if l.owner >= 0 && l.owner <> core then begin
      let d = Topology.distance t.topo core l.owner in
      let xfer = Latency.transfer t.lat d in
      t.c_transfers <- t.c_transfers + 1;
      let cross = d = Topology.Cross_node in
      if cross then t.c_cross <- t.c_cross + 1;
      l.sharers <- bit l.owner lor bit core;
      l.owner <- -1;
      let latency = serialize l ~now xfer in
      let latency = max latency (l.ready_at - now) in
      l.ready_at <- now + latency;
      { latency; cross_node = cross; hit = false }
    end
    else if l.sharers <> 0 then begin
      let best = ref Topology.Cross_node in
      let rank = function
        | Topology.Same_core -> 0
        | Topology.Same_cluster -> 1
        | Topology.Same_node -> 2
        | Topology.Cross_node -> 3
      in
      iter_mask l.sharers (fun c ->
          let d = Topology.distance t.topo core c in
          if rank d < rank !best then best := d);
      let xfer = Latency.transfer t.lat !best in
      t.c_transfers <- t.c_transfers + 1;
      let cross = !best = Topology.Cross_node in
      if cross then t.c_cross <- t.c_cross + 1;
      l.sharers <- l.sharers lor bit core;
      let latency = max xfer (l.ready_at - now) in
      l.ready_at <- now + latency;
      { latency; cross_node = cross; hit = false }
    end
    else begin
      t.c_dram <- t.c_dram + 1;
      l.sharers <- bit core;
      let latency = max t.lat.dram (l.ready_at - now) in
      l.ready_at <- now + latency;
      { latency; cross_node = false; hit = false }
    end

  let write_latency t ~core l =
    if l.owner = core then (t.lat.l1_hit, false, true)
    else begin
      let others = l.sharers land lnot (bit core) in
      let others = if l.owner >= 0 then others lor bit l.owner else others in
      if others = 0 then
        if l.sharers land bit core <> 0 then (t.lat.l1_hit, false, true)
        else begin
          t.c_dram <- t.c_dram + 1;
          (t.lat.dram, false, false)
        end
      else begin
        let d = worst_distance t core others in
        let cycles = Latency.transfer t.lat d in
        t.c_transfers <- t.c_transfers + 1;
        let inval_count = ref 0 in
        iter_mask others (fun _ -> incr inval_count);
        t.c_inval <- t.c_inval + !inval_count;
        let cross = d = Topology.Cross_node in
        if cross then t.c_cross <- t.c_cross + 1;
        (cycles, cross, false)
      end
    end

  let write_begin t ~now ~core ~addr =
    let l = line t addr in
    if l.pending_writer = core && l.pending_until > now then begin
      t.c_hits <- t.c_hits + 1;
      { latency = max t.lat.l1_hit (l.pending_until - now); cross_node = false; hit = true }
    end
    else begin
      let cycles, cross, hit = write_latency t ~core l in
      if hit then t.c_hits <- t.c_hits + 1;
      let latency =
        if hit && l.owner = core then cycles else serialize l ~now cycles
      in
      l.pending_writer <- core;
      l.pending_until <- now + latency;
      { latency; cross_node = cross; hit }
    end

  let write_finish t ~now ~core ~addr =
    let l = line t addr in
    l.owner <- core;
    l.sharers <- bit core;
    if now > l.ready_at then l.ready_at <- now;
    if l.pending_writer = core && l.pending_until <= now then l.pending_writer <- -1

  let extend_pending t ~core ~addr ~until =
    let l = line t addr in
    if l.pending_writer = core && until > l.pending_until then l.pending_until <- until

  let place t ~core ~addr =
    let l = line t addr in
    l.owner <- core;
    l.sharers <- bit core

  let rmw t ~now ~core ~addr =
    let l = line t addr in
    let cycles, cross, hit = write_latency t ~core l in
    if hit then t.c_hits <- t.c_hits + 1;
    let latency =
      (if hit && l.owner = core then cycles else serialize l ~now cycles) + t.lat.rmw_extra
    in
    l.owner <- core;
    l.sharers <- bit core;
    l.ready_at <- now + latency;
    { latency; cross_node = cross; hit = false }

  let load_value t ~addr =
    match Hashtbl.find_opt t.values (addr lsr 3) with Some v -> v | None -> 0L

  let commit_store t ~addr v = Hashtbl.replace t.values (addr lsr 3) v

  let counters t = (t.c_hits, t.c_transfers, t.c_cross, t.c_dram, t.c_inval)
end

(* ---------- Trace driver ---------- *)

let check_access ~op ~step (a : Memsys.access) (r : Ref.access) =
  if a.latency <> r.latency || a.cross_node <> r.cross_node || a.hit <> r.hit then
    failf "step %d (%s): got {lat=%d;cross=%b;hit=%b}, seed {lat=%d;cross=%b;hit=%b}"
      step op a.latency a.cross_node a.hit r.latency r.cross_node r.hit

(* One random trace: monotone time, random cores, a small address pool so
   lines are contended, and every directory-touching operation of the
   interface. *)
let run_trace ~topo ~lat ~seed ~steps =
  let rng = Rng.create seed in
  let ncores = Topology.num_cores topo in
  let sys = Memsys.create ~topo ~lat () in
  let rf = Ref.create ~topo ~lat in
  (* 12 lines, with a couple of distinct words per line so value storage
     and line state interact. *)
  let addr () = (Rng.int rng 12 * 64) + (Rng.int rng 2 * 8) in
  let now = ref 0 in
  for step = 1 to steps do
    now := !now + Rng.int rng 5;
    let now = !now in
    let core = Rng.int rng ncores in
    let addr = addr () in
    (match Rng.int rng 8 with
    | 0 | 1 ->
      check_access ~op:"read" ~step
        (Memsys.read sys ~now ~core ~addr)
        (Ref.read rf ~now ~core ~addr)
    | 2 | 3 ->
      check_access ~op:"write_begin" ~step
        (Memsys.write_begin sys ~now ~core ~addr)
        (Ref.write_begin rf ~now ~core ~addr)
    | 4 ->
      Memsys.write_finish sys ~now ~core ~addr;
      Ref.write_finish rf ~now ~core ~addr
    | 5 ->
      let until = now + Rng.int rng 200 in
      Memsys.extend_pending sys ~core ~addr ~until;
      Ref.extend_pending rf ~core ~addr ~until
    | 6 ->
      if Rng.int rng 4 = 0 then begin
        Memsys.place sys ~core ~addr;
        Ref.place rf ~core ~addr
      end
      else
        check_access ~op:"rmw" ~step
          (Memsys.rmw sys ~now ~core ~addr)
          (Ref.rmw rf ~now ~core ~addr)
    | _ ->
      let v = Int64.of_int (Rng.int rng 1_000_000) in
      Memsys.commit_store sys ~addr v;
      Ref.commit_store rf ~addr v);
    let v = Memsys.load_value sys ~addr in
    let rv = Ref.load_value rf ~addr in
    if v <> rv then failf "step %d: load_value %Ld, seed %Ld" step v rv
  done;
  let c = Memsys.counters sys in
  let rh, rt, rc, rd, ri = Ref.counters rf in
  check Alcotest.int "hits" rh c.hits;
  check Alcotest.int "transfers" rt c.transfers;
  check Alcotest.int "cross-node transfers" rc c.cross_node_transfers;
  check Alcotest.int "dram fills" rd c.dram_fills;
  check Alcotest.int "invalidations" ri c.invalidations

let kunpeng_topo = Topology.make ~nodes:2 ~clusters_per_node:7 ~cores_per_cluster:4

let kunpeng_lat : Latency.t =
  {
    l1_hit = 2;
    same_cluster = 10;
    same_node = 10;
    cross_node = 62;
    dram = 90;
    bisection_rt = 5;
    domain_rt = 320;
    rmw_extra = 6;
  }

let biglittle_topo = Topology.heterogeneous ~nodes:1 ~cluster_sizes:[ 4; 4 ]

let biglittle_lat : Latency.t =
  {
    l1_hit = 2;
    same_cluster = 7;
    same_node = 24;
    cross_node = 60;
    dram = 80;
    bisection_rt = 3;
    domain_rt = 90;
    rmw_extra = 5;
  }

let test_diff_kunpeng () =
  for seed = 1 to 8 do
    run_trace ~topo:kunpeng_topo ~lat:kunpeng_lat ~seed ~steps:20_000
  done

let test_diff_biglittle () =
  for seed = 100 to 107 do
    run_trace ~topo:biglittle_topo ~lat:biglittle_lat ~seed ~steps:20_000
  done

(* QCheck: random topology shapes (anything the int-mask seed can
   represent, i.e. <= 62 cores) and random trace seeds.  The wide-bitset
   directory must agree with the seed semantics on every one — this is
   the property behind "bit-identical at <= 62 cores", with shapes the
   two hand-picked suites above don't cover (single-core clusters,
   many tiny clusters, asymmetric node counts). *)
let shape_gen =
  QCheck.Gen.(
    triple (int_range 1 2) (int_range 1 4) (int_range 1 7) >>= fun shape ->
    pair (return shape) (int_range 1 1_000_000))

let arb_shape =
  QCheck.make
    ~print:(fun ((n, c, k), seed) ->
      Printf.sprintf "%d nodes x %d clusters x %d cores, seed %d" n c k seed)
    shape_gen

let prop_any_shape_matches_seed =
  QCheck.Test.make ~name:"any <=62-core shape matches the seed directory" ~count:40
    arb_shape
    (fun ((nodes, clusters_per_node, cores_per_cluster), seed) ->
      let topo = Topology.make ~nodes ~clusters_per_node ~cores_per_cluster in
      (* run_trace raises on the first divergence *)
      run_trace ~topo ~lat:kunpeng_lat ~seed ~steps:3_000;
      true)

let () =
  Alcotest.run "memsys-diff"
    [
      ( "differential vs seed implementation",
        [
          test_case "kunpeng916-like topology" `Quick test_diff_kunpeng;
          test_case "big.LITTLE topology" `Quick test_diff_biglittle;
          QCheck_alcotest.to_alcotest prop_any_shape_matches_seed;
        ] );
    ]
