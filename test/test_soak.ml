(* Tests for the continuous soak farm: seeded stream determinism,
   the inline-test / inline-program wire codecs, the retry client,
   bounded serve, the metrics-v1 artifact, violation repro bundles,
   unified soak rounds, and end-to-end mixed runs on the single
   engine and the sharded pool. *)

module Lang = Armb_litmus.Lang
module Cat = Armb_litmus.Catalogue
module Fuzz = Armb_litmus.Fuzz
module Rng = Armb_sim.Rng
module Json = Armb_service.Json
module Key = Armb_service.Key
module Codec = Armb_service.Codec
module Engine = Armb_service.Engine
module Serve = Armb_service.Serve
module Retry = Armb_service.Retry
module Out = Armb_service.Out
module Gen = Armb_soak.Gen
module Invariant = Armb_soak.Invariant
module Driver = Armb_soak.Driver
module Rounds = Armb_soak.Rounds
module Synth_soak = Armb_synth.Soak
module Opt_soak = Armb_opt.Soak

let check = Alcotest.check

let tmp_path suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "armb-soak-test-%d-%s" (Unix.getpid ()) suffix)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------- generator determinism ---------- *)

let test_stream_deterministic () =
  let a = Gen.stream ~requests:150 ~seed:31 () in
  let b = Gen.stream ~requests:150 ~seed:31 () in
  let lines js = List.map (fun j -> j.Gen.line) js in
  check (Alcotest.list Alcotest.string) "same seed, byte-identical stream"
    (lines a) (lines b);
  let c = Gen.stream ~requests:150 ~seed:32 () in
  check Alcotest.bool "different seed, different stream" true (lines a <> lines c)

let test_stream_decodes_and_mixes () =
  let jobs = Gen.stream ~requests:200 ~seed:5 () in
  List.iter
    (fun j ->
      match Codec.request_of_line j.Gen.line with
      | Ok req ->
        check Alcotest.string
          ("declared kind matches decoded kind: " ^ j.Gen.line)
          j.Gen.kind
          (Armb_service.Job.kind req.Engine.job)
      | Error e -> Alcotest.fail ("stream line does not decode: " ^ e))
    jobs;
  let kinds = List.sort_uniq compare (List.map (fun j -> j.Gen.kind) jobs) in
  List.iter
    (fun k ->
      check Alcotest.bool ("kind present in 200-job stream: " ^ k) true
        (List.mem k kinds))
    [ "litmus"; "check"; "perturb"; "fix"; "opt" ]

let test_small_pool_still_mixes () =
  let t = Gen.create ~pool:12 ~seed:9 () in
  let kinds = Gen.pool_kinds t in
  check Alcotest.bool
    (Printf.sprintf "12-job pool spans >= 5 kinds (got %s)"
       (String.concat "," kinds))
    true
    (List.length kinds >= 5)

(* ---------- inline wire codecs ---------- *)

(* The canonical key has two parts: the structural lines (threads,
   init, expectations) and the predicate-probing "O ..." lines.  A
   round trip with a synthetic predicate must preserve the former; the
   latter only when the declared conjunction IS the test's original
   predicate (SB and LB below). *)
let structural_key t =
  Key.canonical_test t
  |> String.split_on_char '\n'
  |> List.filter (fun l -> not (String.length l > 1 && l.[0] = 'O' && l.[1] = ' '))
  |> String.concat "\n"

let test_inline_test_round_trip () =
  let conds = [ ("0:r1", 1L) ] in
  List.iter
    (fun (t : Lang.test) ->
      let j = Codec.test_inline_to_json ~interesting_when:conds t in
      match Codec.test_inline_of_json j with
      | Error e -> Alcotest.fail (t.Lang.name ^ ": inline test does not parse: " ^ e)
      | Ok t' ->
        check Alcotest.string (t.Lang.name ^ ": name survives") t.Lang.name
          t'.Lang.name;
        check Alcotest.string
          (t.Lang.name ^ ": structural key survives the round trip")
          (structural_key t) (structural_key t');
        (* and the rendering is a fixpoint: serialize(parse(j)) = j *)
        check Alcotest.string
          (t.Lang.name ^ ": serialization fixpoint")
          (Json.to_string j)
          (Json.to_string (Codec.test_inline_to_json ~interesting_when:conds t')))
    (List.filteri (fun i _ -> i < 8) Cat.all);
  (* with the true predicate declared, the FULL canonical key (probing
     lines included) survives — wire semantics = closure semantics *)
  List.iter
    (fun (name, conds) ->
      match Codec.find_test name with
      | None -> Alcotest.fail ("catalogue test missing: " ^ name)
      | Some t -> (
        let j = Codec.test_inline_to_json ~interesting_when:conds t in
        match Codec.test_inline_of_json j with
        | Error e -> Alcotest.fail (name ^ ": inline test does not parse: " ^ e)
        | Ok t' ->
          check Alcotest.string
            (name ^ ": full canonical key survives with the true predicate")
            (Key.canonical_test t) (Key.canonical_test t')))
    [
      ("SB", [ ("0:r1", 0L); ("1:r1", 0L) ]);
      ("LB", [ ("0:r1", 1L); ("1:r1", 1L) ]);
    ]

let test_inline_program_round_trip () =
  let rng = Rng.create 77 in
  for i = 1 to 6 do
    let p = Fuzz.generate_cfg ~with_loop:(i mod 2 = 0) rng in
    let j = Codec.program_to_json p in
    match Codec.program_of_json j with
    | Error e -> Alcotest.fail (Printf.sprintf "program %d does not parse: %s" i e)
    | Ok p' ->
      check Alcotest.string
        (Printf.sprintf "program %d: canonical key survives" i)
        (Key.canonical_program p) (Key.canonical_program p');
      check Alcotest.string
        (Printf.sprintf "program %d: serialization fixpoint" i)
        (Json.to_string j)
        (Json.to_string (Codec.program_to_json p'))
  done

(* ---------- retry client ---------- *)

let shed_resp ms = { Engine.id = "r"; client = "c"; reply = Engine.Shed { retry_after_ms = ms } }

let ok_resp =
  {
    Engine.id = "r";
    client = "c";
    reply = Engine.Error "stand-in terminal reply";
  }

let test_retry_completes () =
  let sleeps = ref [] in
  let remaining_sheds = ref 2 in
  let attempt () =
    if !remaining_sheds > 0 then begin
      decr remaining_sheds;
      shed_resp 15
    end
    else ok_resp
  in
  match
    Retry.resubmit
      ~policy:{ Retry.max_retries = 5; base_ms = 10; cap_ms = 1000 }
      ~sleep:(fun ms -> sleeps := ms :: !sleeps)
      ~attempt (shed_resp 15)
  with
  | Retry.Completed { retries; _ } ->
    check Alcotest.int "completed after 3 attempts" 3 retries;
    (* backoff honors the engine hint as a floor and doubles the base *)
    check (Alcotest.list Alcotest.int) "backoffs: max(hint, base*2^n)"
      [ 15; 20; 40 ] (List.rev !sleeps)
  | Retry.Gave_up _ -> Alcotest.fail "retry gave up with retries remaining"

let test_retry_gives_up () =
  let attempts = ref 0 in
  match
    Retry.resubmit
      ~policy:{ Retry.max_retries = 3; base_ms = 1; cap_ms = 4 }
      ~sleep:ignore
      ~attempt:(fun () -> incr attempts; shed_resp 1)
      (shed_resp 1)
  with
  | Retry.Completed _ -> Alcotest.fail "cannot complete: every attempt sheds"
  | Retry.Gave_up { last; retries } ->
    check Alcotest.int "exactly max_retries attempts" 3 !attempts;
    check Alcotest.int "retries reported" 3 retries;
    check Alcotest.bool "last response is the shed" true (Retry.is_shed last)

(* ---------- bounded serve ---------- *)

let litmus_line i =
  Printf.sprintf "{\"id\":\"q%d\",\"kind\":\"litmus\",\"test\":\"MP\",\"trials\":5,\"seed\":%d}" i i

let test_serve_max_requests () =
  let inp = tmp_path "serve-in.ndjson" in
  let out = tmp_path "serve-out.ndjson" in
  (match Out.write ~path:inp (String.concat "\n" (List.init 10 litmus_line) ^ "\n") with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let engine = Engine.create ~cache_cap:16 ~queue_bound:16 () in
  let ic = open_in inp and oc = open_out out in
  Serve.serve ~max_requests:3 engine ic oc;
  close_in_noerr ic;
  close_out_noerr oc;
  let responses =
    String.split_on_char '\n' (read_file out)
    |> List.filter (fun l -> String.trim l <> "")
  in
  (* the bound stops reading, never answering: exactly the accepted
     prefix is drained and answered *)
  check Alcotest.int "exactly 3 responses" 3 (List.length responses);
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Ok j ->
        check (Alcotest.option Alcotest.string)
          "responses are the accepted prefix, in order"
          (Some (Printf.sprintf "q%d" i))
          (Json.mem_str "id" j)
      | Error e -> Alcotest.fail ("response does not parse: " ^ e))
    responses;
  Sys.remove inp;
  Sys.remove out

(* ---------- metrics artifact ---------- *)

let small_config ~seed =
  {
    (Driver.default_config ~seed) with
    Driver.requests = 120;
    wave = 24;
    pool = 24;
    queue_bound = 8;
  }

let test_metrics_artifact_round_trips () =
  let path = tmp_path "metrics.json" in
  let cfg = { (small_config ~seed:7) with Driver.metrics_out = Some path } in
  let r = Driver.run ~sleep:ignore cfg in
  check Alcotest.bool "run is clean" true r.Driver.ok;
  check Alcotest.bool "at least one rolling + one final snapshot" true
    (r.Driver.snapshots >= 2);
  let j =
    match Json.of_string (read_file path) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("metrics artifact does not parse: " ^ e)
  in
  check (Alcotest.option Alcotest.string) "schema" (Some "armb-soak-metrics-v1")
    (Json.mem_str "schema" j);
  check (Alcotest.option Alcotest.int) "submitted" (Some 120)
    (Json.mem_int "submitted" j);
  check (Alcotest.option Alcotest.int) "violations" (Some 0)
    (Json.mem_int "violations" j);
  (match Json.member "jobs_by_kind" j with
  | Some (Json.Obj kinds) ->
    check Alcotest.bool "per-kind counts present" true (List.length kinds >= 4)
  | _ -> Alcotest.fail "jobs_by_kind missing");
  (match Json.member "engine" j with
  | Some engine ->
    check (Alcotest.option Alcotest.string) "embedded engine schema"
      (Some "armb-serve-metrics-v1")
      (Json.mem_str "schema" engine);
    check Alcotest.bool "p99 present" true
      (Json.mem_int "latency_p99_us" engine <> None);
    check Alcotest.bool "hit rate present and positive" true
      (match Json.mem_number "hit_rate" engine with
      | Some h -> h > 0.0
      | None -> false)
  | None -> Alcotest.fail "embedded engine metrics missing");
  Sys.remove path

(* ---------- violation repro bundles ---------- *)

(* A fix job on an already-fenced catalogue test with a
   must-repair expectation: the service truthfully answers "already
   sound", the invariant cannot be satisfied, and the driver must
   persist exactly one self-contained bundle. *)
let test_injected_violation_bundle () =
  let dir = tmp_path "bundles" in
  let bad =
    {
      Gen.id = "inject-1";
      kind = "fix";
      expect = Invariant.Fix_must_repair;
      line =
        "{\"id\":\"inject-1\",\"kind\":\"fix\",\"test\":\"MP+dmb.st+dmb.ld\",\
         \"max_edits\":1,\"budget\":200,\"trials\":10,\"seed\":42}";
    }
  in
  let benign =
    List.map
      (fun i ->
        {
          Gen.id = Printf.sprintf "benign-%d" i;
          kind = "litmus";
          expect = Invariant.Status_ok;
          line = litmus_line i;
        })
      [ 1; 2; 3 ]
  in
  let cfg =
    {
      (Driver.default_config ~seed:1) with
      Driver.requests = 0;
      wave = 4;
      bundle_dir = Some dir;
    }
  in
  let r = Driver.run ~sleep:ignore ~jobs:(benign @ [ bad ]) cfg in
  check Alcotest.bool "run is flagged" false r.Driver.ok;
  check Alcotest.int "exactly one violation" 1 (List.length r.Driver.violations);
  let v = List.hd r.Driver.violations in
  check Alcotest.string "the injected job violated" "inject-1" v.Driver.job.Gen.id;
  let files = Sys.readdir dir in
  check Alcotest.int "exactly one bundle file" 1 (Array.length files);
  let bundle_path = Filename.concat dir files.(0) in
  check (Alcotest.option Alcotest.string) "report points at the bundle"
    (Some bundle_path) v.Driver.bundle;
  (match Json.of_string (read_file bundle_path) with
  | Error e -> Alcotest.fail ("bundle does not parse: " ^ e)
  | Ok j ->
    check (Alcotest.option Alcotest.string) "bundle schema"
      (Some "armb-soak-violation-v1")
      (Json.mem_str "schema" j);
    check (Alcotest.option Alcotest.string) "bundle carries the verbatim request"
      (Some bad.Gen.line) (Json.mem_str "request" j);
    check Alcotest.bool "bundle carries a reason" true
      (Json.mem_str "reason" j <> None);
    (* self-contained: the recorded request replays through a fresh
       engine and reproduces a terminal response *)
    match Json.mem_str "request" j with
    | None -> Alcotest.fail "unreachable"
    | Some line -> (
      let engine = Engine.create ~cache_cap:4 ~queue_bound:4 () in
      match (Serve.run_batch engine ~lines:[ line ]).Serve.responses with
      | [ resp ] ->
        let verdict = Invariant.check Invariant.Fix_must_repair resp in
        check Alcotest.bool "replay reproduces the violation" false
          verdict.Invariant.ok
      | _ -> Alcotest.fail "replay produced no response"));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Unix.rmdir dir

(* ---------- end-to-end mixed runs ---------- *)

let test_mixed_run_single_engine () =
  (* queue bound 4 under waves of 48 forces shedding, so the run must
     demonstrate shed -> retry -> complete cycles *)
  let cfg =
    {
      (Driver.default_config ~seed:11) with
      Driver.requests = 200;
      wave = 48;
      pool = 48;
      queue_bound = 4;
    }
  in
  let r = Driver.run ~sleep:ignore cfg in
  check Alcotest.bool "zero violations" true r.Driver.ok;
  check Alcotest.int "every request submitted" 200 r.Driver.submitted;
  check Alcotest.int "completed + gave_up accounts for every request" 200
    (r.Driver.completed + r.Driver.gave_up);
  check Alcotest.int "no error replies" 0 r.Driver.errors;
  check Alcotest.bool "memo cache hit" true (r.Driver.hits > 0);
  check Alcotest.bool "shed observed" true (r.Driver.shed_seen > 0);
  check Alcotest.bool "shed -> retry -> complete cycle" true
    (r.Driver.retried_ok > 0);
  check Alcotest.bool "perturb drift accumulated" true (r.Driver.drift_total > 0.0);
  check Alcotest.bool "at least 5 kinds exercised" true
    (List.length r.Driver.by_kind >= 5)

let test_mixed_run_sharded () =
  let cfg =
    {
      (Driver.default_config ~seed:11) with
      Driver.requests = 200;
      wave = 48;
      pool = 48;
      queue_bound = 8;
      domains = 2;
    }
  in
  let r = Driver.run ~sleep:ignore cfg in
  check Alcotest.bool "zero violations (2 domains)" true r.Driver.ok;
  check Alcotest.int "every request submitted (2 domains)" 200 r.Driver.submitted;
  check Alcotest.int "completed + gave_up accounts for every request (2 domains)"
    200
    (r.Driver.completed + r.Driver.gave_up);
  check Alcotest.bool "memo cache hit (2 domains)" true (r.Driver.hits > 0)

(* ---------- unified soak rounds ---------- *)

let test_synth_rounds_fold_to_report () =
  let rounds = Synth_soak.run_rounds ~tests:3 ~seed:2024 () in
  check Alcotest.int "one round per test" 3 (List.length rounds);
  let folded = Synth_soak.report_of_rounds rounds in
  let direct = Synth_soak.run ~tests:3 ~seed:2024 () in
  check Alcotest.bool "run = report_of_rounds . run_rounds" true (folded = direct);
  let unified = List.map Rounds.of_synth rounds in
  check Alcotest.bool "unified verdict agrees with the report" (Synth_soak.ok direct)
    (Rounds.all_ok unified);
  check
    (Alcotest.list Alcotest.string)
    "unified failures are the report failures" direct.Synth_soak.failures
    (Rounds.failures unified);
  List.iter
    (fun r -> check Alcotest.string "synth rounds carry the fix kind" "fix" r.Rounds.kind)
    unified

let test_opt_rounds_fold_to_report () =
  let rounds = Opt_soak.run_rounds ~rounds:4 ~seed:2025 () in
  check Alcotest.int "one round per program" 4 (List.length rounds);
  let folded = Opt_soak.report_of_rounds rounds in
  let direct = Opt_soak.run ~rounds:4 ~seed:2025 () in
  check Alcotest.bool "run = report_of_rounds . run_rounds" true (folded = direct);
  let unified = List.map Rounds.of_opt rounds in
  check Alcotest.bool "unified verdict agrees with the report" (Opt_soak.ok direct)
    (Rounds.all_ok unified);
  List.iter
    (fun r -> check Alcotest.string "opt rounds carry the opt kind" "opt" r.Rounds.kind)
    unified

let () =
  Alcotest.run "soak"
    [
      ( "generator",
        [
          Alcotest.test_case "same seed, byte-identical stream" `Quick
            test_stream_deterministic;
          Alcotest.test_case "every line decodes; kinds mixed" `Quick
            test_stream_decodes_and_mixes;
          Alcotest.test_case "small pool still mixes kinds" `Quick
            test_small_pool_still_mixes;
        ] );
      ( "codec",
        [
          Alcotest.test_case "inline test round trip" `Quick
            test_inline_test_round_trip;
          Alcotest.test_case "inline program round trip" `Quick
            test_inline_program_round_trip;
        ] );
      ( "retry",
        [
          Alcotest.test_case "sheds then completes, hint-floored backoff" `Quick
            test_retry_completes;
          Alcotest.test_case "gives up after the policy, never drops" `Quick
            test_retry_gives_up;
        ] );
      ( "serve",
        [
          Alcotest.test_case "--max-requests answers the accepted prefix" `Quick
            test_serve_max_requests;
        ] );
      ( "driver",
        [
          Alcotest.test_case "metrics-v1 artifact round-trips" `Quick
            test_metrics_artifact_round_trips;
          Alcotest.test_case "injected unsound repair -> one repro bundle" `Quick
            test_injected_violation_bundle;
          Alcotest.test_case "200 mixed jobs, single engine" `Quick
            test_mixed_run_single_engine;
          Alcotest.test_case "200 mixed jobs, 2 domains" `Quick
            test_mixed_run_sharded;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "synth rounds fold to the classic report" `Quick
            test_synth_rounds_fold_to_report;
          Alcotest.test_case "opt rounds fold to the classic report" `Quick
            test_opt_rounds_fold_to_report;
        ] );
    ]
