(* Tests for the CPU model: micro-op timing, barrier semantics, atomics,
   spinning and the machine driver. *)

module Barrier = Armb_cpu.Barrier
module Config = Armb_cpu.Config
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Topology = Armb_mem.Topology

let check = Alcotest.check

let cfg : Config.t =
  {
    name = "test";
    freq_ghz = 1.0;
    topo = Topology.make ~nodes:2 ~clusters_per_node:2 ~cores_per_cluster:4;
    lat =
      {
        l1_hit = 2;
        same_cluster = 10;
        same_node = 16;
        cross_node = 60;
        dram = 90;
        bisection_rt = 5;
        domain_rt = 300;
        rmw_extra = 6;
      };
    alu_ipc = 4;
    rob_size = 32;
    sb_size = 8;
    isb_cost = 20;
    dmb_min = 2;
    stlr_extra = 50;
    quantum = 64;
  }

let run_one body =
  let m = Machine.create cfg in
  let result = ref 0 in
  Machine.spawn m ~core:0 (fun c -> result := body m c);
  Machine.run_exn m;
  !result

(* ---------- compute / issue ---------- *)

let test_compute_ipc () =
  let cycles = run_one (fun _ c -> Core.compute c 40; Core.cursor c) in
  check Alcotest.int "40 nops at ipc 4" 10 cycles

let test_compute_rounding () =
  let cycles = run_one (fun _ c -> Core.compute c 41; Core.cursor c) in
  check Alcotest.int "ceil(41/4)" 11 cycles

let test_compute_zero () =
  let cycles = run_one (fun _ c -> Core.compute c 0; Core.cursor c) in
  check Alcotest.int "free" 0 cycles

let test_compute_negative () =
  let m = Machine.create cfg in
  Machine.spawn m ~core:0 (fun c -> Core.compute c (-1));
  match Machine.run_exn m with
  | () -> Alcotest.fail "negative compute must be rejected"
  | exception Machine.Simulation_error _ -> ()

(* ---------- loads and stores ---------- *)

let test_store_load_roundtrip () =
  let v =
    run_one (fun m c ->
        let a = Machine.alloc_line m in
        Core.store c a 99L;
        Int64.to_int (Core.await c (Core.load c a)))
  in
  check Alcotest.int "forwarded value" 99 v

let test_store_forwarding_is_fast () =
  let cycles =
    run_one (fun m c ->
        let a = Machine.alloc_line m in
        Core.store c a 1L;
        ignore (Core.await c (Core.load c a));
        Core.cursor c)
  in
  check Alcotest.bool "forwarding beats dram" true (cycles < 20)

let test_load_miss_costs_dram () =
  let cycles =
    run_one (fun m c ->
        let a = Machine.alloc_line m in
        ignore (Core.await c (Core.load c a));
        Core.cursor c)
  in
  check Alcotest.int "dram latency on cold load" 90 cycles

let test_unawaited_loads_overlap () =
  let cycles =
    run_one (fun m c ->
        let a = Machine.alloc_line m and b = Machine.alloc_line m in
        let t1 = Core.load c a in
        let t2 = Core.load c b in
        ignore (Core.await c t1);
        ignore (Core.await c t2);
        Core.cursor c)
  in
  check Alcotest.bool "misses pipeline" true (cycles < 110)

let test_awaited_loads_serialize () =
  let cycles =
    run_one (fun m c ->
        let a = Machine.alloc_line m and b = Machine.alloc_line m in
        ignore (Core.await c (Core.load c a));
        ignore (Core.await c (Core.load c b));
        Core.cursor c)
  in
  check Alcotest.bool "dependent chain serializes" true (cycles >= 180)

let test_value_of_completed_token () =
  let v =
    run_one (fun m c ->
        let a = Machine.alloc_line m in
        Core.store c a 5L;
        let tok = Core.load c a in
        ignore (Core.await c tok);
        Int64.to_int (Core.value tok))
  in
  check Alcotest.int "value after await" 5 v

let test_sb_capacity_stalls () =
  (* sb_size = 8; issuing many cold stores must stall on drain space *)
  let cycles =
    run_one (fun m c ->
        for _ = 1 to 20 do
          let a = Machine.alloc_line m in
          Core.store c a 1L
        done;
        Core.cursor c)
  in
  check Alcotest.bool "store-buffer backpressure" true (cycles > 90)

(* ---------- barriers ---------- *)

let elapsed_with body =
  run_one (fun m c ->
      body m c;
      Core.cursor c)

let test_dsb_blocks_everything () =
  let base = elapsed_with (fun _ c -> Core.compute c 40) in
  let with_dsb =
    elapsed_with (fun _ c ->
        Core.compute c 20;
        Core.barrier c (Barrier.Dsb Full);
        Core.compute c 20)
  in
  check Alcotest.bool "DSB costs the domain round trip" true
    (with_dsb >= base + cfg.lat.domain_rt)

let test_dmb_cheap_without_memory () =
  let base = elapsed_with (fun _ c -> Core.compute c 40) in
  let with_dmb =
    elapsed_with (fun _ c ->
        Core.compute c 20;
        Core.barrier c (Barrier.Dmb Full);
        Core.compute c 20)
  in
  check Alcotest.bool "internally terminated DMB is cheap" true (with_dmb <= base + 5)

let test_isb_flushes () =
  let base = elapsed_with (fun _ c -> Core.compute c 40) in
  let with_isb =
    elapsed_with (fun _ c ->
        Core.compute c 20;
        Core.barrier c Barrier.Isb;
        Core.compute c 20)
  in
  check Alcotest.bool "ISB pays the flush" true (with_isb >= base + cfg.isb_cost)

let test_dmb_st_orders_stores () =
  (* Two threads: writer stores data then flag with DMB st; reader polls
     flag then reads data.  The stale read must never occur. *)
  let m = Machine.create cfg in
  let data = Machine.alloc_line m and flag = Machine.alloc_line m in
  (* make data expensive for the writer: reader owns it *)
  Armb_mem.Memsys.place (Machine.mem m) ~core:8 ~addr:data;
  let seen = ref (-1) in
  Machine.spawn m ~core:0 (fun c ->
      Core.store c data 23L;
      Core.barrier c (Barrier.Dmb St);
      Core.store c flag 1L);
  Machine.spawn m ~core:8 (fun c ->
      ignore (Core.spin_until c flag (Int64.equal 1L));
      Core.barrier c (Barrier.Dmb Ld);
      seen := Int64.to_int (Core.await c (Core.load c data)));
  Machine.run_exn m;
  check Alcotest.int "no stale read through DMB st" 23 !seen

let test_no_barrier_allows_stale_read () =
  (* Same shape without barriers: with the data line remote and the flag
     line local, the stale read is observable. *)
  let m = Machine.create cfg in
  let data = Machine.alloc_line m and flag = Machine.alloc_line m in
  Armb_mem.Memsys.place (Machine.mem m) ~core:8 ~addr:data;
  Armb_mem.Memsys.place (Machine.mem m) ~core:0 ~addr:flag;
  let seen = ref (-1) in
  Machine.spawn m ~core:0 (fun c ->
      Core.store c data 23L;
      Core.store c flag 1L);
  Machine.spawn m ~core:8 (fun c ->
      let f = Core.load c flag in
      let d = Core.load c data in
      let fv = Core.await c f and dv = Core.await c d in
      if Int64.equal fv 1L then seen := Int64.to_int dv);
  Machine.run_exn m;
  check Alcotest.int "weak behaviour observable" 0 !seen

let test_dmb_full_backpressures_alu () =
  (* A DMB full pending on a slow drain occupies the window: a large nop
     batch behind it cannot all issue during the wait. *)
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  Armb_mem.Memsys.place (Machine.mem m) ~core:8 ~addr:a;
  let no_barrier = ref 0 and with_barrier = ref 0 in
  Machine.spawn m ~core:0 (fun c ->
      Core.store c a 1L;
      Core.compute c 400;
      no_barrier := Core.cursor c);
  Machine.run_exn m;
  let m2 = Machine.create cfg in
  let b = Machine.alloc_line m2 in
  Armb_mem.Memsys.place (Machine.mem m2) ~core:8 ~addr:b;
  Machine.spawn m2 ~core:0 (fun c ->
      Core.store c b 1L;
      Core.barrier c (Barrier.Dmb Full);
      Core.compute c 400;
      with_barrier := Core.cursor c);
  Machine.run_exn m2;
  check Alcotest.bool "nops stall behind pending DMB full" true
    (!with_barrier > !no_barrier + 30)

let test_stlr_waits_for_prior () =
  let m = Machine.create cfg in
  let data = Machine.alloc_line m and flag = Machine.alloc_line m in
  Armb_mem.Memsys.place (Machine.mem m) ~core:8 ~addr:data;
  Armb_mem.Memsys.place (Machine.mem m) ~core:0 ~addr:flag;
  let seen = ref (-1) in
  Machine.spawn m ~core:0 (fun c ->
      Core.store c data 23L;
      Core.stlr c flag 1L);
  Machine.spawn m ~core:8 (fun c ->
      ignore (Core.spin_until c flag (Int64.equal 1L));
      Core.barrier c (Barrier.Dmb Ld);
      seen := Int64.to_int (Core.await c (Core.load c data)));
  Machine.run_exn m;
  check Alcotest.int "release ordering" 23 !seen

let test_ldar_gates_later_accesses () =
  (* acquire: a load after an LDAR cannot complete before it *)
  let cycles =
    run_one (fun m c ->
        let a = Machine.alloc_line m and b = Machine.alloc_line m in
        Core.store c b 1L;
        let t1 = Core.ldar c a in
        let t2 = Core.load c b in
        ignore (Core.await c t2);
        ignore (Core.await c t1);
        Core.cursor c)
  in
  check Alcotest.bool "second load gated by acquire" true (cycles >= 90)

(* ---------- atomics ---------- *)

let test_fetch_add_atomic () =
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  let iters = 50 in
  for core = 0 to 3 do
    Machine.spawn m ~core (fun c ->
        for _ = 1 to iters do
          ignore (Core.await c (Core.fetch_add c a 1L))
        done)
  done;
  Machine.run_exn m;
  check Alcotest.int64 "no lost updates" (Int64.of_int (4 * iters))
    (Armb_mem.Memsys.load_value (Machine.mem m) ~addr:a)

let test_fetch_add_returns_old () =
  let v =
    run_one (fun m c ->
        let a = Machine.alloc_line m in
        Core.store c a 10L;
        Int64.to_int (Core.await c (Core.fetch_add c a 5L)))
  in
  check Alcotest.int "old value" 10 v

let test_cas_success_and_failure () =
  let ok =
    run_one (fun m c ->
        let a = Machine.alloc_line m in
        Core.store c a 1L;
        let old = Core.await c (Core.cas c a ~expected:1L ~desired:2L) in
        let old2 = Core.await c (Core.cas c a ~expected:1L ~desired:3L) in
        if Int64.equal old 1L && Int64.equal old2 2L then 1 else 0)
  in
  check Alcotest.int "cas semantics" 1 ok

let test_cas_exclusive () =
  (* only one of N concurrent CAS(0 -> id) winners *)
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  let winners = ref 0 in
  for core = 0 to 7 do
    Machine.spawn m ~core (fun c ->
        let old = Core.await c (Core.cas c a ~expected:0L ~desired:(Int64.of_int (core + 1))) in
        if Int64.equal old 0L then incr winners)
  done;
  Machine.run_exn m;
  check Alcotest.int "exactly one winner" 1 !winners

(* ---------- spinning ---------- *)

let test_spin_wakes_on_store () =
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  let woken_at = ref 0 in
  Machine.spawn m ~core:0 (fun c ->
      ignore (Core.spin_until c a (Int64.equal 7L));
      woken_at := Core.cursor c);
  Machine.spawn m ~core:1 (fun c ->
      Core.compute c 200;
      Core.store c a 7L);
  Machine.run_exn m;
  check Alcotest.bool "woke after the store" true (!woken_at >= 50)

let test_spin_poll_two_words () =
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  let seen = ref (0, 0) in
  Machine.spawn m ~core:0 (fun c ->
      let v =
        Core.spin_poll c a (fun () ->
            let x = Core.await c (Core.load c a) in
            let y = Core.await c (Core.load c (a + 8)) in
            if Int64.equal x 1L && Int64.equal y 2L then Some (x, y) else None)
      in
      seen := (Int64.to_int (fst v), Int64.to_int (snd v)));
  Machine.spawn m ~core:1 (fun c ->
      Core.compute c 100;
      Core.store c (a + 8) 2L;
      Core.compute c 100;
      Core.store c a 1L);
  Machine.run_exn m;
  check (Alcotest.pair Alcotest.int Alcotest.int) "both words" (1, 2) !seen

let test_deadlock_detection () =
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  Machine.spawn m ~core:0 (fun c -> ignore (Core.spin_until c a (Int64.equal 1L)));
  (match Machine.run m with
  | Machine.Deadlock [ 0 ] -> ()
  | _ -> Alcotest.fail "expected deadlock on core 0")

(* ---------- machine ---------- *)

let test_alloc_alignment () =
  let m = Machine.create cfg in
  let a = Machine.alloc_line m and b = Machine.alloc_line m in
  check Alcotest.int "64-byte aligned" 0 (a mod 64);
  check Alcotest.bool "distinct lines" true
    (Armb_mem.Memsys.line_of a <> Armb_mem.Memsys.line_of b)

let test_spawn_validation () =
  let m = Machine.create cfg in
  Machine.spawn m ~core:0 (fun _ -> ());
  Alcotest.check_raises "duplicate spawn"
    (Machine.Simulation_error "spawn: core 0 already has a thread") (fun () ->
      Machine.spawn m ~core:0 (fun _ -> ()));
  Alcotest.check_raises "core out of range"
    (Machine.Simulation_error "spawn: core 99 out of range") (fun () ->
      Machine.spawn m ~core:99 (fun _ -> ()))

(* 128 threads on a 128-core machine — past both the old 62-core sharer
   bound and the old Hashtbl-keyed thread table.  Every core fetch-adds
   a shared line and reads a line every other core also reads, so the
   sharer set spans all four bitset words; the counter proves no update
   and no thread was lost. *)
let test_wide_machine_run () =
  let wide = { cfg with topo = Topology.make ~nodes:2 ~clusters_per_node:8 ~cores_per_cluster:8 } in
  let n = Topology.num_cores wide.topo in
  check Alcotest.int "128 cores" 128 n;
  let m = Machine.create wide in
  let ctr = Machine.alloc_line m in
  let shared = Machine.alloc_line m in
  for core = 0 to n - 1 do
    Machine.spawn m ~core (fun c ->
        ignore (Core.await c (Core.load c shared));
        ignore (Core.await c (Core.fetch_add c ctr 1L));
        ignore (Core.await c (Core.load c shared)))
  done;
  Machine.run_exn m;
  check Alcotest.int64 "every core counted once" (Int64.of_int n)
    (Armb_mem.Memsys.load_value (Machine.mem m) ~addr:ctr);
  check Alcotest.bool "time advanced" true (Machine.elapsed m > 0)

let test_throughput_freq () =
  let m = Machine.create cfg in
  Machine.spawn m ~core:0 (fun c -> Core.compute c 4000);
  Machine.run_exn m;
  (* 1000 cycles at 1 GHz; 1000 ops -> 1e9 ops/s *)
  check (Alcotest.float 1e3) "ops per second" 1e9 (Machine.throughput m ~ops:1000)

let test_counters_track_ops () =
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  Machine.spawn m ~core:0 (fun c ->
      Core.store c a 1L;
      ignore (Core.await c (Core.load c a));
      Core.barrier c (Barrier.Dmb Full);
      ignore (Core.await c (Core.fetch_add c a 1L)));
  Machine.run_exn m;
  let ctr = Core.counters (Machine.core m 0) in
  check Alcotest.int "loads" 1 ctr.Core.loads;
  check Alcotest.int "stores" 1 ctr.Core.stores;
  check Alcotest.int "barriers" 1 ctr.Core.barriers;
  check Alcotest.int "rmws" 1 ctr.Core.rmws

let test_quantum_interleaving () =
  (* Two threads hammering the same line must alternate ownership, which
     requires neither to run to completion first. *)
  let m = Machine.create cfg in
  let a = Machine.alloc_line m in
  let iters = 100 in
  for core = 0 to 1 do
    Machine.spawn m ~core (fun c ->
        for _ = 1 to iters do
          ignore (Core.await c (Core.load c a));
          Core.compute c 8
        done)
  done;
  Machine.run_exn m;
  let c0 = Core.cursor (Machine.core m 0) and c1 = Core.cursor (Machine.core m 1) in
  check Alcotest.bool "threads finish at comparable times" true
    (abs (c0 - c1) < (c0 + c1) / 2)

(* ---------- tracing ---------- *)

let test_trace_collects_spans () =
  let tr = Armb_cpu.Trace.create () in
  let m = Machine.create ~tracer:(Armb_cpu.Trace.emit tr) cfg in
  let a = Machine.alloc_line m in
  Machine.spawn m ~core:0 (fun c ->
      Core.compute c 20;
      Core.store c a 1L;
      ignore (Core.await c (Core.load c a));
      Core.barrier c (Barrier.Dmb Full));
  Machine.run_exn m;
  let spans = Armb_cpu.Trace.spans tr in
  let kinds = List.sort_uniq compare (List.map (fun s -> s.Armb_cpu.Trace.kind) spans) in
  check Alcotest.bool "compute traced" true (List.mem "compute" kinds);
  check Alcotest.bool "store traced" true (List.mem "store" kinds);
  check Alcotest.bool "barrier traced" true (List.mem "barrier" kinds);
  List.iter
    (fun (s : Armb_cpu.Trace.span) ->
      if s.start_cycle < 0 || s.duration < 0 then Alcotest.fail "negative span")
    spans

let test_trace_json_wellformed () =
  let tr = Armb_cpu.Trace.create () in
  Armb_cpu.Trace.emit tr
    { Armb_cpu.Trace.core = 1; kind = "load"; name = "ld \"quoted\"\n"; start_cycle = 5; duration = 7 };
  let json = Armb_cpu.Trace.to_chrome_json tr in
  check Alcotest.bool "escapes quotes" true
    (String.length json > 0 && not (String.contains (String.concat "" (String.split_on_char '\\' json)) '\n'))

let test_trace_limit_drops () =
  let tr = Armb_cpu.Trace.create ~limit:3 () in
  for i = 1 to 10 do
    Armb_cpu.Trace.emit tr
      { Armb_cpu.Trace.core = 0; kind = "x"; name = "y"; start_cycle = i; duration = 1 }
  done;
  check Alcotest.int "kept" 3 (List.length (Armb_cpu.Trace.spans tr));
  check Alcotest.int "dropped" 7 (Armb_cpu.Trace.dropped tr)

let () =
  Alcotest.run "armb_cpu"
    [
      ( "compute",
        [
          Alcotest.test_case "ipc" `Quick test_compute_ipc;
          Alcotest.test_case "rounding" `Quick test_compute_rounding;
          Alcotest.test_case "zero" `Quick test_compute_zero;
          Alcotest.test_case "negative rejected" `Quick test_compute_negative;
        ] );
      ( "memory-ops",
        [
          Alcotest.test_case "store-load roundtrip" `Quick test_store_load_roundtrip;
          Alcotest.test_case "forwarding fast" `Quick test_store_forwarding_is_fast;
          Alcotest.test_case "cold load = dram" `Quick test_load_miss_costs_dram;
          Alcotest.test_case "independent loads overlap" `Quick test_unawaited_loads_overlap;
          Alcotest.test_case "dependent loads serialize" `Quick test_awaited_loads_serialize;
          Alcotest.test_case "token value" `Quick test_value_of_completed_token;
          Alcotest.test_case "store-buffer backpressure" `Quick test_sb_capacity_stalls;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "DSB blocks everything" `Quick test_dsb_blocks_everything;
          Alcotest.test_case "idle DMB cheap" `Quick test_dmb_cheap_without_memory;
          Alcotest.test_case "ISB flush cost" `Quick test_isb_flushes;
          Alcotest.test_case "DMB st orders stores" `Quick test_dmb_st_orders_stores;
          Alcotest.test_case "stale read without barriers" `Quick
            test_no_barrier_allows_stale_read;
          Alcotest.test_case "DMB full backpressures ALU" `Quick
            test_dmb_full_backpressures_alu;
          Alcotest.test_case "STLR release ordering" `Quick test_stlr_waits_for_prior;
          Alcotest.test_case "LDAR acquire gating" `Quick test_ldar_gates_later_accesses;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "fetch_add atomic" `Quick test_fetch_add_atomic;
          Alcotest.test_case "fetch_add returns old" `Quick test_fetch_add_returns_old;
          Alcotest.test_case "cas semantics" `Quick test_cas_success_and_failure;
          Alcotest.test_case "cas exclusivity" `Quick test_cas_exclusive;
        ] );
      ( "spinning",
        [
          Alcotest.test_case "spin wakes on store" `Quick test_spin_wakes_on_store;
          Alcotest.test_case "spin_poll two words" `Quick test_spin_poll_two_words;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        ] );
      ( "machine",
        [
          Alcotest.test_case "line allocation" `Quick test_alloc_alignment;
          Alcotest.test_case "spawn validation" `Quick test_spawn_validation;
          Alcotest.test_case "128-core machine" `Quick test_wide_machine_run;
          Alcotest.test_case "throughput conversion" `Quick test_throughput_freq;
          Alcotest.test_case "op counters" `Quick test_counters_track_ops;
          Alcotest.test_case "quantum interleaving" `Quick test_quantum_interleaving;
        ] );
      ( "trace",
        [
          Alcotest.test_case "collects spans" `Quick test_trace_collects_spans;
          Alcotest.test_case "json escaping" `Quick test_trace_json_wellformed;
          Alcotest.test_case "limit drops" `Quick test_trace_limit_drops;
        ] );
    ]
