(* Tests for the application workloads: the dedup pipeline and the
   floorplan branch-and-bound.  Both self-validate (end-to-end payload
   checks; oracle comparison), so completing a run is itself the main
   assertion. *)

module P = Armb_platform.Platform
module W = Armb_workloads

let check = Alcotest.check

let dedup_spec queue workload =
  { (W.Dedup.default_spec P.kunpeng916 ~queue ~workload) with slots = 8 }

let test_dedup_all_queues_verified () =
  List.iter
    (fun q ->
      let r = W.Dedup.run (dedup_spec q W.Dedup.Small) in
      check Alcotest.int (W.Dedup.queue_name q ^ " chunks") 800 r.W.Dedup.chunks;
      check Alcotest.bool "throughput" true (r.W.Dedup.throughput > 0.0))
    W.Dedup.all_queues

let test_dedup_ordering_of_variants () =
  let t q = (W.Dedup.run (dedup_spec q W.Dedup.Small)).W.Dedup.throughput in
  let q = t W.Dedup.Locked_queue and rb = t W.Dedup.Ring and rbp = t W.Dedup.Ring_pilot in
  check Alcotest.bool "RB-P >= RB" true (rbp >= rb);
  check Alcotest.bool "RB > Q (lock-free beats lock here)" true (rb > q)

let test_dedup_workload_sizes () =
  let cycles w = (W.Dedup.run (dedup_spec W.Dedup.Ring w)).W.Dedup.cycles in
  let s = cycles W.Dedup.Small and l = cycles W.Dedup.Large in
  check Alcotest.bool "larger workload takes longer" true (l > (2 * s))

let test_dedup_bad_cores () =
  let spec = { (dedup_spec W.Dedup.Ring W.Dedup.Small) with cores = [ 0; 1 ] } in
  match W.Dedup.run spec with
  | _ -> Alcotest.fail "bad stage core list accepted"
  | exception Invalid_argument _ -> ()

let test_barrier_study_small_sweep () =
  let t = W.Barrier_study.run ~sizes:[ 8; 16 ] ~episodes:2 ~work:20 () in
  check Alcotest.int "rows" 2 (List.length t.W.Barrier_study.rows);
  List.iter
    (fun (r : W.Barrier_study.row) ->
      check Alcotest.bool "central cpe positive" true (r.central.cycles_per_episode > 0.);
      check Alcotest.bool "tree cpe positive" true (r.tree.cycles_per_episode > 0.);
      check Alcotest.bool "dissem cpe positive" true
        (r.dissemination.cycles_per_episode > 0.))
    t.W.Barrier_study.rows

let test_barrier_study_crossover_found () =
  (* central wins at 8, the tree must win by 256: the crossover is in
     between and is reported *)
  let t = W.Barrier_study.run ~sizes:[ 8; 256 ] ~episodes:2 ~work:20 () in
  match t.W.Barrier_study.crossover with
  | Some c -> check Alcotest.int "crossover at the large size" 256 c
  | None -> Alcotest.fail "no crossover up to 256 cores"

let test_barrier_study_bad_sizes () =
  List.iter
    (fun sizes ->
      match W.Barrier_study.run ~sizes () with
      | _ -> Alcotest.fail "bad sweep size accepted"
      | exception Invalid_argument _ -> ())
    [ []; [ 12 ]; [ 4 ]; [ 2048 ]; [ 8; 0 ] ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_barrier_study_json () =
  let t = W.Barrier_study.run ~sizes:[ 8 ] ~episodes:1 ~work:10 () in
  let json = W.Barrier_study.to_json t in
  check Alcotest.bool "schema tag" true (contains ~sub:"armb-barrier-study-v1" json);
  check Alcotest.bool "row tag" true (contains ~sub:"\"cores\": 8" json)

let test_floorplan_matches_oracle () =
  (* the run itself raises if the parallel result differs from the
     sequential oracle *)
  List.iter
    (fun inp ->
      let r = W.Floorplan.run (W.Floorplan.default_spec P.kunpeng916 ~input:inp) in
      check Alcotest.bool (W.Floorplan.input_name inp ^ " explored") true
        (r.W.Floorplan.nodes_explored > 0);
      check Alcotest.bool "some bound updates" true (r.W.Floorplan.lock_updates > 0))
    [ W.Floorplan.Input5; W.Floorplan.Input15 ]

let test_floorplan_pilot_matches_oracle () =
  let spec = { (W.Floorplan.default_spec P.kunpeng916 ~input:W.Floorplan.Input5) with pilot = true } in
  let r = W.Floorplan.run spec in
  check Alcotest.bool "best area positive" true (r.W.Floorplan.best_area > 0)

let test_floorplan_worker_scaling () =
  let cyc workers =
    (W.Floorplan.run
       { (W.Floorplan.default_spec P.kunpeng916 ~input:W.Floorplan.Input15) with workers })
      .W.Floorplan.cycles
  in
  check Alcotest.bool "more workers, fewer cycles" true (cyc 8 < cyc 1)

let test_floorplan_deterministic () =
  let spec = W.Floorplan.default_spec P.kunpeng916 ~input:W.Floorplan.Input5 in
  let a = W.Floorplan.run spec and b = W.Floorplan.run spec in
  check Alcotest.int "same cycles" a.W.Floorplan.cycles b.W.Floorplan.cycles;
  check Alcotest.int "same area" a.W.Floorplan.best_area b.W.Floorplan.best_area

let () =
  Alcotest.run "armb_workloads"
    [
      ( "dedup",
        [
          Alcotest.test_case "all queues verified" `Slow test_dedup_all_queues_verified;
          Alcotest.test_case "variant ordering" `Slow test_dedup_ordering_of_variants;
          Alcotest.test_case "workload sizes" `Slow test_dedup_workload_sizes;
          Alcotest.test_case "stage core validation" `Quick test_dedup_bad_cores;
        ] );
      ( "barrier-study",
        [
          Alcotest.test_case "small sweep" `Quick test_barrier_study_small_sweep;
          Alcotest.test_case "crossover found" `Slow test_barrier_study_crossover_found;
          Alcotest.test_case "bad sizes" `Quick test_barrier_study_bad_sizes;
          Alcotest.test_case "json" `Quick test_barrier_study_json;
        ] );
      ( "floorplan",
        [
          Alcotest.test_case "oracle match" `Slow test_floorplan_matches_oracle;
          Alcotest.test_case "pilot oracle match" `Quick test_floorplan_pilot_matches_oracle;
          Alcotest.test_case "worker scaling" `Slow test_floorplan_worker_scaling;
          Alcotest.test_case "deterministic" `Quick test_floorplan_deterministic;
        ] );
    ]
