(* Tests for the platform registry and the characterization sweep
   drivers (table shapes and cross-platform invariants). *)

module Ch = Armb_core.Characterize
module Config = Armb_cpu.Config
module P = Armb_platform.Platform
module Series = Armb_sim.Series
module Topology = Armb_mem.Topology

let check = Alcotest.check

let test_registry () =
  check Alcotest.int "four platforms" 4 (List.length P.all);
  check (Alcotest.list Alcotest.string) "names"
    [ "kunpeng916"; "kirin960"; "kirin970"; "raspberrypi4" ]
    P.names;
  (match P.by_name "KUNPENG916" with
  | Some c -> check Alcotest.string "case-insensitive lookup" "kunpeng916" c.Config.name
  | None -> Alcotest.fail "lookup failed");
  check Alcotest.bool "unknown platform" true (P.by_name "cray1" = None)

let test_configs_valid () =
  List.iter (fun c -> Config.validate c) P.all

let test_topologies () =
  check Alcotest.int "kunpeng NUMA nodes" 2 (Topology.num_nodes P.kunpeng916.Config.topo);
  check Alcotest.int "kirin960 single node" 1 (Topology.num_nodes P.kirin960.Config.topo);
  check Alcotest.int "kirin big cluster size" 4
    (List.length (P.big_cluster_cores P.kirin960));
  check Alcotest.int "rpi4 cores" 4 (Topology.num_cores P.raspberrypi4.Config.topo)

let test_comm_pairs_well_formed () =
  List.iter
    (fun (p : P.placement) ->
      match p.cores with
      | [ a; b ] ->
        let n = Topology.num_cores p.cfg.Config.topo in
        if a < 0 || a >= n || b < 0 || b >= n || a = b then
          Alcotest.failf "%s: bad core pair (%d, %d)" p.label a b
      | _ -> Alcotest.failf "%s: expected exactly two cores" p.label)
    P.comm_pairs;
  (* the cross-node pair must actually cross nodes *)
  let cross = List.nth P.comm_pairs 1 in
  match cross.cores with
  | [ a; b ] ->
    check Alcotest.bool "crosses nodes" true
      (Topology.node_of cross.cfg.Config.topo a <> Topology.node_of cross.cfg.Config.topo b)
  | _ -> assert false

let test_manycore_shapes () =
  (* valid sizes: nodes x clusters x 8 as documented *)
  List.iter
    (fun (cores, nodes, clusters) ->
      (match P.manycore_shape cores with
      | Ok (n, c) ->
        check Alcotest.(pair int int) (Printf.sprintf "%d-core shape" cores) (nodes, clusters)
          (n, c)
      | Error m -> Alcotest.failf "%d cores rejected: %s" cores m);
      let cfg = P.manycore ~cores in
      Config.validate cfg;
      check Alcotest.int "core count" cores (Topology.num_cores cfg.Config.topo);
      check Alcotest.int "node count" nodes (Topology.num_nodes cfg.Config.topo))
    [ (8, 1, 1); (16, 1, 2); (64, 1, 8); (128, 2, 8); (256, 4, 8); (512, 8, 8) ]

let test_manycore_bad_sizes () =
  List.iter
    (fun cores ->
      match P.manycore_shape cores with
      | Error _ -> (
        (* the constructor must agree with the validator *)
        match P.manycore ~cores with
        | _ -> Alcotest.failf "manycore accepted invalid size %d" cores
        | exception Invalid_argument _ -> ())
      | Ok _ -> Alcotest.failf "manycore_shape accepted invalid size %d" cores)
    [ 0; 4; 7; 12; 100; P.manycore_max + 8; -8 ];
  check Alcotest.int "max tracks Topology.max_cores" Topology.max_cores P.manycore_max

let test_run_config_core_bounds () =
  let module RC = Armb_platform.Run_config in
  (* in-range pair is fine, including on a wide manycore machine *)
  ignore (RC.make ~cores:(0, 511) (P.manycore ~cores:512) : RC.t);
  match RC.make ~cores:(0, 56) P.kunpeng916 with
  | _ -> Alcotest.fail "out-of-range core accepted"
  | exception Invalid_argument m ->
    check Alcotest.bool "message names the range and platform" true
      (let contains ~sub s =
         let n = String.length sub and l = String.length s in
         let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       contains ~sub:"0..55" m && contains ~sub:"kunpeng916" m)

let test_server_deeper_than_mobile () =
  (* the calibration axis behind Observation 4 *)
  let k = P.kunpeng916.Config.lat and m = P.kirin960.Config.lat in
  check Alcotest.bool "deeper domain boundary" true
    (k.Armb_mem.Latency.domain_rt > (2 * m.Armb_mem.Latency.domain_rt));
  check Alcotest.bool "more expensive remote transfers" true
    (k.Armb_mem.Latency.cross_node > m.Armb_mem.Latency.same_cluster)

let test_fig2_table_shape () =
  let t = Ch.fig2 P.raspberrypi4 ~nop_counts:[ 10; 30 ] ~iters:300 in
  check Alcotest.int "8 barrier rows" 8 (List.length t.Series.rows);
  check Alcotest.int "2 columns" 2 (List.length t.Series.col_labels);
  List.iter
    (fun (name, cells) ->
      List.iter
        (fun v -> if v <= 0.0 then Alcotest.failf "row %s has non-positive cell" name)
        cells)
    t.Series.rows

let test_fig3_rows_labelled () =
  let t =
    Ch.fig3 P.kirin970 ~cores:(0, 1) ~label:"test" ~nop_counts:[ 10 ] ~iters:300
  in
  let names = List.map fst t.Series.rows in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "missing row %s" expected)
    [ "No Barrier"; "DMB full-1"; "DMB full-2"; "DSB st-2"; "STLR" ]

let test_fig5_dependencies_present () =
  let t = Ch.fig5 P.kirin960 ~cores:(0, 1) ~nop_counts:[ 30 ] ~iters:300 in
  let names = List.map fst t.Series.rows in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "missing row %s" expected)
    [ "DATA DEP"; "ADDR DEP"; "CTRL"; "CTRL+ISB"; "LDAR" ]

let test_tipping_monotone_with_distance () =
  (* hiding a DMB takes more independent work cross-node than same-node *)
  let same = Ch.tipping_point P.kunpeng916 ~cores:(0, 4) ~iters:500 () in
  let cross = Ch.tipping_point P.kunpeng916 ~cores:(0, 28) ~iters:500 () in
  match (same, cross) with
  | Some s, Some c -> check Alcotest.bool "cross-node needs more nops" true (c > s)
  | _ -> Alcotest.fail "tipping points must exist on kunpeng916"

let () =
  Alcotest.run "armb_platform"
    [
      ( "registry",
        [
          Alcotest.test_case "names and lookup" `Quick test_registry;
          Alcotest.test_case "configs validate" `Quick test_configs_valid;
          Alcotest.test_case "topologies" `Quick test_topologies;
          Alcotest.test_case "comm pairs" `Quick test_comm_pairs_well_formed;
          Alcotest.test_case "server vs mobile calibration" `Quick
            test_server_deeper_than_mobile;
        ] );
      ( "manycore",
        [
          Alcotest.test_case "valid shapes" `Quick test_manycore_shapes;
          Alcotest.test_case "invalid sizes" `Quick test_manycore_bad_sizes;
          Alcotest.test_case "run-config core bounds" `Quick test_run_config_core_bounds;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "fig2 table shape" `Quick test_fig2_table_shape;
          Alcotest.test_case "fig3 rows" `Quick test_fig3_rows_labelled;
          Alcotest.test_case "fig5 dependency rows" `Quick test_fig5_dependencies_present;
          Alcotest.test_case "tipping monotone in distance" `Slow
            test_tipping_monotone_with_distance;
        ] );
    ]
