(* Tests for the native OCaml-domains runtime library.  The host has
   few cores, so thread counts stay small and iteration counts modest;
   correctness (not throughput) is what these tests establish. *)

module R = Armb_runtime

let check = Alcotest.check

(* ---------- Pilot codec ---------- *)

let test_codec_roundtrip () =
  let pool = R.Pilot_codec.make_pool ~seed:1 () in
  let s = R.Pilot_codec.sender pool and r = R.Pilot_codec.receiver pool in
  let data = ref 0 and flag = ref 0 in
  List.iter
    (fun msg ->
      (match R.Pilot_codec.encode s msg with
      | R.Pilot_codec.Write_data v -> data := v
      | R.Pilot_codec.Toggle_flag -> flag := !flag lxor 1);
      match R.Pilot_codec.try_decode r ~data:!data ~flag:!flag with
      | Some got -> check Alcotest.int "payload" msg got
      | None -> Alcotest.fail "lost message")
    [ 0; 1; 1; 1; max_int; min_int; 42; 42 ]

let prop_codec_any_sequence =
  QCheck.Test.make ~name:"native codec delivers any int sequence" ~count:200
    QCheck.(list int)
    (fun msgs ->
      let pool = R.Pilot_codec.make_pool ~seed:9 () in
      let s = R.Pilot_codec.sender pool and r = R.Pilot_codec.receiver pool in
      let data = ref 0 and flag = ref 0 in
      List.for_all
        (fun msg ->
          (match R.Pilot_codec.encode s msg with
          | R.Pilot_codec.Write_data v -> data := v
          | R.Pilot_codec.Toggle_flag -> flag := !flag lxor 1);
          R.Pilot_codec.try_decode r ~data:!data ~flag:!flag = Some msg)
        msgs)

let test_codec_no_spurious () =
  let pool = R.Pilot_codec.make_pool ~seed:2 () in
  let r = R.Pilot_codec.receiver pool in
  check Alcotest.bool "nothing to decode initially" true
    (R.Pilot_codec.try_decode r ~data:0 ~flag:0 = None)

(* ---------- SPSC ring ---------- *)

let test_ring_fifo_single_threaded () =
  let r = R.Spsc_ring.create ~slots:8 in
  for i = 1 to 8 do
    check Alcotest.bool "send ok" true (R.Spsc_ring.try_send r i)
  done;
  check Alcotest.bool "full" false (R.Spsc_ring.try_send r 99);
  for i = 1 to 8 do
    check (Alcotest.option Alcotest.int) "fifo" (Some i) (R.Spsc_ring.try_recv r)
  done;
  check (Alcotest.option Alcotest.int) "empty" None (R.Spsc_ring.try_recv r)

let test_ring_power_of_two () =
  match R.Spsc_ring.create ~slots:12 with
  | _ -> Alcotest.fail "non-power-of-two accepted"
  | exception Invalid_argument _ -> ()

let test_ring_cross_domain () =
  let r = R.Spsc_ring.create ~slots:16 in
  let n = 5_000 in
  let producer = Domain.spawn (fun () -> for i = 1 to n do R.Spsc_ring.send r i done) in
  let sum = ref 0 and ordered = ref true and last = ref 0 in
  for _ = 1 to n do
    let v = R.Spsc_ring.recv r in
    if v <> !last + 1 then ordered := false;
    last := v;
    sum := !sum + v
  done;
  Domain.join producer;
  check Alcotest.bool "in order" true !ordered;
  check Alcotest.int "no loss" (n * (n + 1) / 2) !sum

(* Same protocol over boxed payloads: the variant the sharded job
   service ships requests/responses through. *)

let test_poly_ring_fifo_single_threaded () =
  let r = R.Spsc_ring.Poly.create ~slots:8 in
  for i = 1 to 8 do
    check Alcotest.bool "send ok" true
      (R.Spsc_ring.Poly.try_send r (string_of_int i))
  done;
  check Alcotest.bool "full" false (R.Spsc_ring.Poly.try_send r "x");
  for i = 1 to 8 do
    check
      (Alcotest.option Alcotest.string)
      "fifo"
      (Some (string_of_int i))
      (R.Spsc_ring.Poly.try_recv r)
  done;
  check (Alcotest.option Alcotest.string) "empty" None (R.Spsc_ring.Poly.try_recv r)

let test_poly_ring_power_of_two () =
  match R.Spsc_ring.Poly.create ~slots:12 with
  | _ -> Alcotest.fail "non-power-of-two accepted"
  | exception Invalid_argument _ -> ()

let test_poly_ring_cross_domain () =
  let r = R.Spsc_ring.Poly.create ~slots:16 in
  let n = 5_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          R.Spsc_ring.Poly.send r (i, string_of_int i)
        done)
  in
  let ok = ref true in
  for i = 1 to n do
    let k, s = R.Spsc_ring.Poly.recv r in
    (* boxed payloads arrive in order and intact: the slot write is
       published by the producer-counter store *)
    if k <> i || s <> string_of_int i then ok := false
  done;
  Domain.join producer;
  check Alcotest.bool "in order, payloads intact" true !ok;
  check Alcotest.int "drained" 0 (R.Spsc_ring.Poly.length r)

(* ---------- Pilot channel ---------- *)

let test_pilot_channel_single_threaded () =
  let ch = R.Pilot_channel.create ~slots:4 () in
  List.iter (fun v -> check Alcotest.bool "send" true (R.Pilot_channel.try_send ch v)) [ 7; 7; 7 ];
  List.iter
    (fun v -> check (Alcotest.option Alcotest.int) "recv" (Some v) (R.Pilot_channel.try_recv ch))
    [ 7; 7; 7 ];
  check (Alcotest.option Alcotest.int) "drained" None (R.Pilot_channel.try_recv ch)

let test_pilot_channel_capacity () =
  let ch = R.Pilot_channel.create ~slots:2 () in
  check Alcotest.bool "1" true (R.Pilot_channel.try_send ch 1);
  check Alcotest.bool "2" true (R.Pilot_channel.try_send ch 2);
  check Alcotest.bool "full" false (R.Pilot_channel.try_send ch 3);
  ignore (R.Pilot_channel.try_recv ch);
  check Alcotest.bool "slot reclaimed" true (R.Pilot_channel.try_send ch 3)

let test_pilot_channel_cross_domain () =
  (* a single-entry shuffle pool makes repeated payloads collide, so the
     flag-toggle fallback is exercised under real concurrency *)
  let ch = R.Pilot_channel.create ~pool_size:1 ~slots:16 () in
  let n = 5_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          R.Pilot_channel.send ch (i / 100)
        done)
  in
  let ok = ref true in
  for i = 1 to n do
    if R.Pilot_channel.recv ch <> i / 100 then ok := false
  done;
  Domain.join producer;
  check Alcotest.bool "all payloads in order" true !ok;
  check Alcotest.bool "fallback path exercised" true (R.Pilot_channel.fallbacks ch > 0)

(* ---------- Ticket lock ---------- *)

let test_ticket_lock_counter () =
  let l = R.Ticket_lock.create () in
  let counter = ref 0 in
  let iters = 20_000 in
  let worker () =
    for _ = 1 to iters do
      R.Ticket_lock.with_lock l (fun () -> incr counter)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  check Alcotest.int "no lost increments" (4 * iters) !counter;
  check Alcotest.int "served accounting" (4 * iters) (R.Ticket_lock.holders_served l)

let test_ticket_lock_exception_safe () =
  let l = R.Ticket_lock.create () in
  (try R.Ticket_lock.with_lock l (fun () -> failwith "boom") with Failure _ -> ());
  (* must be re-acquirable *)
  check Alcotest.int "still usable" 7 (R.Ticket_lock.with_lock l (fun () -> 7))

(* ---------- DSM-Synch ---------- *)

let test_dsmsynch_counter () =
  let d = R.Dsmsynch.create () in
  let counter = ref 0 in
  let iters = 10_000 in
  let worker () =
    for _ = 1 to iters do
      ignore
        (R.Dsmsynch.exec d (fun () ->
             incr counter;
             !counter))
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  check Alcotest.int "no lost increments" (4 * iters) !counter

let test_dsmsynch_pilot_counter () =
  let d = R.Dsmsynch.create ~pilot:true () in
  let counter = ref 0 in
  let iters = 10_000 in
  let worker () =
    for _ = 1 to iters do
      ignore (R.Dsmsynch.exec d (fun () -> incr counter; !counter))
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  check Alcotest.int "no lost increments (pilot)" (4 * iters) !counter

let test_dsmsynch_return_values () =
  let d = R.Dsmsynch.create () in
  check Alcotest.int "return value" 41 (R.Dsmsynch.exec d (fun () -> 41));
  check Alcotest.int "another" 17 (R.Dsmsynch.exec d (fun () -> 17))

(* ---------- FFWD ---------- *)

let test_ffwd_counter () =
  let srv = R.Ffwd.create ~clients:4 () in
  let counter = ref 0 in
  let iters = 5_000 in
  let worker client () =
    for _ = 1 to iters do
      ignore (R.Ffwd.request srv ~client (fun () -> incr counter; !counter))
    done
  in
  let ds = List.init 3 (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join ds;
  R.Ffwd.shutdown srv;
  check Alcotest.int "no lost increments" (4 * iters) !counter;
  check Alcotest.int "server accounting" (4 * iters) (R.Ffwd.served srv)

let test_ffwd_pilot_counter () =
  let srv = R.Ffwd.create ~pilot:true ~clients:2 () in
  let counter = ref 0 in
  let iters = 5_000 in
  let worker client () =
    for _ = 1 to iters do
      ignore (R.Ffwd.request srv ~client (fun () -> incr counter; !counter))
    done
  in
  let d = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d;
  R.Ffwd.shutdown srv;
  check Alcotest.int "no lost increments (pilot)" (2 * iters) !counter

let test_ffwd_shutdown_idempotent () =
  let srv = R.Ffwd.create ~clients:1 () in
  ignore (R.Ffwd.request srv ~client:0 (fun () -> 1));
  R.Ffwd.shutdown srv;
  R.Ffwd.shutdown srv

(* ---------- delegated data structures ---------- *)

let test_delegated_queue_fifo () =
  let l = R.Ticket_lock.create () in
  let p = R.Delegated.With_ticket l in
  let q = R.Delegated.Queue_d.create () in
  List.iter (R.Delegated.Queue_d.enqueue q p) [ 1; 2; 3 ];
  check Alcotest.int "length" 3 (R.Delegated.Queue_d.length q p);
  check (Alcotest.option Alcotest.int) "fifo" (Some 1) (R.Delegated.Queue_d.dequeue q p);
  check (Alcotest.option Alcotest.int) "fifo2" (Some 2) (R.Delegated.Queue_d.dequeue q p)

let test_delegated_stack_lifo () =
  let d = R.Dsmsynch.create () in
  let p = R.Delegated.With_dsmsynch d in
  let s = R.Delegated.Stack_d.create () in
  List.iter (R.Delegated.Stack_d.push s p) [ 1; 2; 3 ];
  check (Alcotest.option Alcotest.int) "lifo" (Some 3) (R.Delegated.Stack_d.pop s p)

let test_delegated_sorted_list () =
  let l = R.Ticket_lock.create () in
  let p = R.Delegated.With_ticket l in
  let s = R.Delegated.Sorted_list_d.create () in
  check Alcotest.bool "insert 5" true (R.Delegated.Sorted_list_d.insert s p 5);
  check Alcotest.bool "insert 3" true (R.Delegated.Sorted_list_d.insert s p 3);
  check Alcotest.bool "insert dup" false (R.Delegated.Sorted_list_d.insert s p 5);
  check Alcotest.bool "mem" true (R.Delegated.Sorted_list_d.mem s p 3);
  check Alcotest.bool "remove" true (R.Delegated.Sorted_list_d.remove s p 3);
  check Alcotest.bool "gone" false (R.Delegated.Sorted_list_d.mem s p 3);
  check Alcotest.int "length" 1 (R.Delegated.Sorted_list_d.length s p)

let test_delegated_list_concurrent () =
  let d = R.Dsmsynch.create () in
  let p = R.Delegated.With_dsmsynch d in
  let s = R.Delegated.Sorted_list_d.create () in
  let n = 2_000 in
  let worker lo () =
    for k = lo to lo + n - 1 do
      ignore (R.Delegated.Sorted_list_d.insert s p k)
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker n) ] in
  worker (2 * n) ();
  List.iter Domain.join ds;
  check Alcotest.int "all inserted" (3 * n) (R.Delegated.Sorted_list_d.length s p)

let test_delegated_hash () =
  let protects = Array.init 4 (fun _ -> R.Delegated.With_ticket (R.Ticket_lock.create ())) in
  let h = R.Delegated.Hash_d.create ~buckets:4 ~protects in
  for k = 0 to 99 do
    ignore (R.Delegated.Hash_d.insert h k)
  done;
  check Alcotest.int "size" 100 (R.Delegated.Hash_d.length h);
  check Alcotest.bool "mem" true (R.Delegated.Hash_d.mem h 50);
  check Alcotest.bool "remove" true (R.Delegated.Hash_d.remove h 50);
  check Alcotest.int "size after remove" 99 (R.Delegated.Hash_d.length h)

(* ---------- pipeline ---------- *)

let test_pipeline_identity () =
  let spec =
    { R.Pipeline.channel = R.Pipeline.Plain_ring; slots = 8; stages = [ (fun x -> x + 1); (fun x -> x * 2) ] }
  in
  let inputs = List.init 200 Fun.id in
  let r = R.Pipeline.run spec ~inputs in
  check (Alcotest.list Alcotest.int) "stage composition preserved"
    (List.map (fun x -> (x + 1) * 2) inputs)
    r.R.Pipeline.outputs

let test_pipeline_pilot_channels () =
  let spec = { R.Pipeline.channel = R.Pipeline.Pilot; slots = 8; stages = [ (fun x -> x + 10) ] } in
  let inputs = List.init 300 (fun i -> i mod 7) in
  let r = R.Pipeline.run spec ~inputs in
  check (Alcotest.list Alcotest.int) "pilot channels deliver in order"
    (List.map (fun x -> x + 10) inputs)
    r.R.Pipeline.outputs

let () =
  Alcotest.run "armb_runtime"
    [
      ( "pilot-codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "no spurious decode" `Quick test_codec_no_spurious;
          QCheck_alcotest.to_alcotest prop_codec_any_sequence;
        ] );
      ( "spsc-ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo_single_threaded;
          Alcotest.test_case "power of two" `Quick test_ring_power_of_two;
          Alcotest.test_case "cross-domain" `Slow test_ring_cross_domain;
          Alcotest.test_case "poly fifo" `Quick test_poly_ring_fifo_single_threaded;
          Alcotest.test_case "poly power of two" `Quick test_poly_ring_power_of_two;
          Alcotest.test_case "poly cross-domain" `Slow test_poly_ring_cross_domain;
        ] );
      ( "pilot-channel",
        [
          Alcotest.test_case "single-threaded" `Quick test_pilot_channel_single_threaded;
          Alcotest.test_case "capacity" `Quick test_pilot_channel_capacity;
          Alcotest.test_case "cross-domain with collisions" `Slow
            test_pilot_channel_cross_domain;
        ] );
      ( "ticket-lock",
        [
          Alcotest.test_case "counter" `Slow test_ticket_lock_counter;
          Alcotest.test_case "exception safety" `Quick test_ticket_lock_exception_safe;
        ] );
      ( "dsmsynch",
        [
          Alcotest.test_case "counter" `Slow test_dsmsynch_counter;
          Alcotest.test_case "pilot counter" `Slow test_dsmsynch_pilot_counter;
          Alcotest.test_case "return values" `Quick test_dsmsynch_return_values;
        ] );
      ( "ffwd",
        [
          Alcotest.test_case "counter" `Slow test_ffwd_counter;
          Alcotest.test_case "pilot counter" `Slow test_ffwd_pilot_counter;
          Alcotest.test_case "shutdown idempotent" `Quick test_ffwd_shutdown_idempotent;
        ] );
      ( "delegated",
        [
          Alcotest.test_case "queue fifo" `Quick test_delegated_queue_fifo;
          Alcotest.test_case "stack lifo" `Quick test_delegated_stack_lifo;
          Alcotest.test_case "sorted list" `Quick test_delegated_sorted_list;
          Alcotest.test_case "concurrent list inserts" `Slow test_delegated_list_concurrent;
          Alcotest.test_case "hash table" `Quick test_delegated_hash;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "composition" `Slow test_pipeline_identity;
          Alcotest.test_case "pilot channels" `Slow test_pipeline_pilot_channels;
        ] );
    ]
