(* Tests for the memory subsystem: topology, latency, coherence
   directory, value store and watches. *)

module Topology = Armb_mem.Topology
module Latency = Armb_mem.Latency
module Memsys = Armb_mem.Memsys

let check = Alcotest.check

let lat : Latency.t =
  {
    l1_hit = 2;
    same_cluster = 10;
    same_node = 16;
    cross_node = 60;
    dram = 90;
    bisection_rt = 5;
    domain_rt = 300;
    rmw_extra = 6;
  }

let topo2x2x4 () = Topology.make ~nodes:2 ~clusters_per_node:2 ~cores_per_cluster:4

let mk () = Memsys.create ~topo:(topo2x2x4 ()) ~lat ()

(* ---------- Topology ---------- *)

let test_topo_shape () =
  let t = topo2x2x4 () in
  check Alcotest.int "cores" 16 (Topology.num_cores t);
  check Alcotest.int "clusters" 4 (Topology.num_clusters t);
  check Alcotest.int "nodes" 2 (Topology.num_nodes t);
  check Alcotest.int "cluster of core 5" 1 (Topology.cluster_of t 5);
  check Alcotest.int "node of core 9" 1 (Topology.node_of t 9)

let dist = Alcotest.testable Topology.pp_distance ( = )

let test_topo_distance () =
  let t = topo2x2x4 () in
  check dist "same core" Topology.Same_core (Topology.distance t 3 3);
  check dist "same cluster" Topology.Same_cluster (Topology.distance t 0 3);
  check dist "same node" Topology.Same_node (Topology.distance t 0 4);
  check dist "cross node" Topology.Cross_node (Topology.distance t 0 8);
  check dist "symmetric" (Topology.distance t 8 0) (Topology.distance t 0 8)

let test_topo_heterogeneous () =
  let t = Topology.heterogeneous ~nodes:1 ~cluster_sizes:[ 4; 4 ] in
  check Alcotest.int "cores" 8 (Topology.num_cores t);
  check Alcotest.int "clusters" 2 (Topology.num_clusters t);
  check (Alcotest.list Alcotest.int) "big cluster" [ 0; 1; 2; 3 ] (Topology.cores_of_cluster t 0);
  check dist "big-little distance" Topology.Same_node (Topology.distance t 0 4)

let test_topo_bounds () =
  let t = topo2x2x4 () in
  Alcotest.check_raises "core out of range"
    (Invalid_argument "Topology: core 16 outside 0..15") (fun () ->
      ignore (Topology.distance t 0 16));
  Alcotest.check_raises "too many cores"
    (Invalid_argument
       "Topology.make: 4x16x17 = 1088 cores exceeds the 1024-core limit") (fun () ->
      ignore (Topology.make ~nodes:4 ~clusters_per_node:16 ~cores_per_cluster:17))

(* The refactor's point: topologies well past the old 62-core int-mask
   cap, with directory classification still correct at the far end. *)
let test_topo_wide () =
  let t = Topology.make ~nodes:8 ~clusters_per_node:8 ~cores_per_cluster:8 in
  check Alcotest.int "cores" 512 (Topology.num_cores t);
  check dist "same cluster high" Topology.Same_cluster (Topology.distance t 504 511);
  check dist "same node high" Topology.Same_node (Topology.distance t 448 511);
  check dist "cross node high" Topology.Cross_node (Topology.distance t 0 511);
  check Alcotest.bool "node set membership" true
    (Armb_mem.Coreset.mem (Topology.node_set t 511) 448);
  check Alcotest.bool "cluster set excludes neighbor cluster" false
    (Armb_mem.Coreset.mem (Topology.cluster_set t 511) 503)

let test_topo_node_listing () =
  let t = topo2x2x4 () in
  check (Alcotest.list Alcotest.int) "node 1 cores" [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Topology.cores_of_node t 1)

(* ---------- Latency ---------- *)

let test_latency_transfer () =
  check Alcotest.int "same core = hit" 2 (Latency.transfer lat Topology.Same_core);
  check Alcotest.int "cross node" 60 (Latency.transfer lat Topology.Cross_node)

(* ---------- Coherence timing ---------- *)

let test_read_miss_then_hit () =
  let m = mk () in
  let a1 = Memsys.read m ~now:0 ~core:0 ~addr:0x1000 in
  check Alcotest.bool "first read misses (dram)" false a1.Memsys.hit;
  check Alcotest.int "dram latency" 90 a1.Memsys.latency;
  let a2 = Memsys.read m ~now:100 ~core:0 ~addr:0x1000 in
  check Alcotest.bool "second read hits" true a2.Memsys.hit;
  check Alcotest.int "hit latency" 2 a2.Memsys.latency

let test_read_from_owner_distance () =
  let m = mk () in
  ignore (Memsys.write_begin m ~now:0 ~core:0 ~addr:0x1000);
  Memsys.write_finish m ~now:10 ~core:0 ~addr:0x1000;
  let near = Memsys.read m ~now:100 ~core:1 ~addr:0x1000 in
  check Alcotest.int "same-cluster transfer" 10 near.Memsys.latency;
  ignore (Memsys.write_begin m ~now:200 ~core:0 ~addr:0x2000);
  Memsys.write_finish m ~now:210 ~core:0 ~addr:0x2000;
  let far = Memsys.read m ~now:300 ~core:8 ~addr:0x2000 in
  check Alcotest.int "cross-node transfer" 60 far.Memsys.latency;
  check Alcotest.bool "flagged cross-node" true far.Memsys.cross_node

let test_write_invalidates_sharers_at_finish () =
  let m = mk () in
  (* two sharers *)
  ignore (Memsys.read m ~now:0 ~core:1 ~addr:0x1000);
  ignore (Memsys.read m ~now:100 ~core:8 ~addr:0x1000);
  let w = Memsys.write_begin m ~now:200 ~core:0 ~addr:0x1000 in
  (* must wait for the farthest sharer (cross-node) *)
  check Alcotest.int "invalidation latency" 60 w.Memsys.latency;
  check Alcotest.bool "cross-node invalidation" true w.Memsys.cross_node;
  (* before the drain finishes, core 1 still hits its old copy *)
  let r = Memsys.read m ~now:210 ~core:1 ~addr:0x1000 in
  check Alcotest.bool "old copy readable before finish" true r.Memsys.hit;
  Memsys.write_finish m ~now:260 ~core:0 ~addr:0x1000;
  let r2 = Memsys.read m ~now:300 ~core:1 ~addr:0x1000 in
  check Alcotest.bool "invalidated after finish" false r2.Memsys.hit

let test_write_own_line_cheap () =
  let m = mk () in
  ignore (Memsys.write_begin m ~now:0 ~core:0 ~addr:0x1000);
  Memsys.write_finish m ~now:90 ~core:0 ~addr:0x1000;
  let w = Memsys.write_begin m ~now:200 ~core:0 ~addr:0x1000 in
  check Alcotest.bool "owned write hits" true w.Memsys.hit;
  check Alcotest.int "hit latency" 2 w.Memsys.latency

let test_write_coalesce_pending () =
  let m = mk () in
  ignore (Memsys.read m ~now:0 ~core:8 ~addr:0x1000);
  let w1 = Memsys.write_begin m ~now:100 ~core:0 ~addr:0x1000 in
  check Alcotest.int "first drain remote" 60 w1.Memsys.latency;
  let w2 = Memsys.write_begin m ~now:110 ~core:0 ~addr:0x1000 in
  check Alcotest.bool "coalesced" true w2.Memsys.hit;
  check Alcotest.int "completes with the pending drain" 50 w2.Memsys.latency

let test_line_serialization () =
  let m = mk () in
  ignore (Memsys.read m ~now:0 ~core:4 ~addr:0x1000);
  let w1 = Memsys.write_begin m ~now:100 ~core:0 ~addr:0x1000 in
  let w2 = Memsys.write_begin m ~now:100 ~core:8 ~addr:0x1000 in
  check Alcotest.bool "competing writers serialize" true
    (w2.Memsys.latency > w1.Memsys.latency)

let test_hit_waits_for_fill () =
  let m = mk () in
  ignore (Memsys.write_begin m ~now:0 ~core:8 ~addr:0x1000);
  Memsys.write_finish m ~now:60 ~core:8 ~addr:0x1000;
  (* core 0 misses at t=100; the line arrives at 160 *)
  let miss = Memsys.read m ~now:100 ~core:0 ~addr:0x1000 in
  check Alcotest.int "miss latency" 60 miss.Memsys.latency;
  (* an immediately-following hit cannot complete before the fill *)
  let hit = Memsys.read m ~now:102 ~core:0 ~addr:0x1000 in
  check Alcotest.bool "hit" true hit.Memsys.hit;
  check Alcotest.int "hit completion clamped to fill" 58 hit.Memsys.latency

let test_sharer_fetch_waits_for_fill () =
  let m = mk () in
  (* core 0 starts a DRAM fill at t=0: the line exists at t=90 *)
  let fill = Memsys.read m ~now:0 ~core:0 ~addr:0x1000 in
  check Alcotest.int "dram fill" 90 fill.Memsys.latency;
  (* core 1 fetches from that sharer at t=5: the nominal same-cluster
     transfer is 10 cycles, but the copy cannot leave core 0 before the
     fill itself lands — completion is clamped to t=90 *)
  let fetch = Memsys.read m ~now:5 ~core:1 ~addr:0x1000 in
  check Alcotest.int "sharer fetch clamped to in-flight fill" 85 fetch.Memsys.latency

let test_owner_read_waits_for_late_drain () =
  let m = mk () in
  (* core 8 drains a store whose horizon is stretched to t=200 (the
     shape an STLR surcharge produces) *)
  ignore (Memsys.write_begin m ~now:0 ~core:8 ~addr:0x1000);
  Memsys.extend_pending m ~core:8 ~addr:0x1000 ~until:200;
  Memsys.write_finish m ~now:200 ~core:8 ~addr:0x1000;
  (* core 0 reads from the owner at t=100: nominal cross-node transfer
     is 60 cycles, but the line only exists at t=200 *)
  let r = Memsys.read m ~now:100 ~core:0 ~addr:0x1000 in
  check Alcotest.int "owner transfer clamped to late drain" 100 r.Memsys.latency

let test_rmw_surcharge () =
  let m = mk () in
  let a = Memsys.rmw m ~now:0 ~core:0 ~addr:0x1000 in
  check Alcotest.int "dram + rmw extra" (90 + 6) a.Memsys.latency

let test_extend_pending () =
  let m = mk () in
  let w1 = Memsys.write_begin m ~now:0 ~core:0 ~addr:0x1000 in
  (* stretch the drain (e.g. STLR surcharge): a same-line store by the
     same core must now coalesce behind the extended horizon *)
  Memsys.extend_pending m ~core:0 ~addr:0x1000 ~until:(w1.Memsys.latency + 500);
  let w2 = Memsys.write_begin m ~now:10 ~core:0 ~addr:0x1000 in
  check Alcotest.bool "coalesced" true w2.Memsys.hit;
  check Alcotest.int "completes with the extended drain" (w1.Memsys.latency + 500 - 10)
    w2.Memsys.latency;
  (* extending someone else's drain is a no-op *)
  Memsys.extend_pending m ~core:5 ~addr:0x1000 ~until:99999;
  let w3 = Memsys.write_begin m ~now:20 ~core:0 ~addr:0x1000 in
  check Alcotest.bool "horizon unchanged by foreign extend" true
    (w3.Memsys.latency <= w1.Memsys.latency + 500)

(* Property: access latencies are non-negative and bounded by one worst
   transfer per operation issued so far (competing operations queue on a
   line, so waiting time accumulates at most one service per rival). *)
let prop_latency_bounds =
  QCheck.Test.make ~name:"latencies positive and bounded" ~count:200
    QCheck.(list (triple (int_range 0 15) (int_range 0 7) bool))
    (fun ops ->
      let m = mk () in
      let worst = lat.dram + lat.rmw_extra + 1 in
      let now = ref 0 in
      let issued = ref 0 in
      List.for_all
        (fun (core, linei, is_write) ->
          now := !now + 7;
          incr issued;
          let addr = 0x1000 + (linei * 64) in
          let a =
            if is_write then begin
              let a = Memsys.write_begin m ~now:!now ~core ~addr in
              Memsys.write_finish m ~now:(!now + a.Memsys.latency) ~core ~addr;
              a
            end
            else Memsys.read m ~now:!now ~core ~addr
          in
          a.Memsys.latency >= 0 && a.Memsys.latency <= worst * !issued)
        ops)

(* Property: after any sequence of commits, the last committed value per
   word is what load_value returns (the value store is a plain map). *)
let prop_value_store =
  QCheck.Test.make ~name:"value store returns last commit per word" ~count:200
    QCheck.(list (pair (int_range 0 31) (int_range (-1000) 1000)))
    (fun writes ->
      let m = mk () in
      let shadow = Hashtbl.create 16 in
      List.iter
        (fun (w, v) ->
          let addr = 0x4000 + (w * 8) in
          Hashtbl.replace shadow addr (Int64.of_int v);
          Memsys.commit_store m ~addr (Int64.of_int v))
        writes;
      Hashtbl.fold
        (fun addr v acc -> acc && Int64.equal (Memsys.load_value m ~addr) v)
        shadow true)

(* ---------- Values and watches ---------- *)

let test_values () =
  let m = mk () in
  check Alcotest.int64 "unwritten reads 0" 0L (Memsys.load_value m ~addr:0x1000);
  Memsys.commit_store m ~addr:0x1000 42L;
  check Alcotest.int64 "committed value" 42L (Memsys.load_value m ~addr:0x1000);
  Memsys.commit_store m ~addr:0x1008 7L;
  check Alcotest.int64 "word granularity" 42L (Memsys.load_value m ~addr:0x1000);
  check Alcotest.int64 "second word" 7L (Memsys.load_value m ~addr:0x1008)

let test_watch_fires_once () =
  let m = mk () in
  let fired = ref 0 in
  Memsys.watch m ~addr:0x1000 (fun () -> incr fired);
  Memsys.commit_store m ~addr:0x1000 1L;
  check Alcotest.int "fired" 1 !fired;
  Memsys.commit_store m ~addr:0x1000 2L;
  check Alcotest.int "one-shot" 1 !fired

let test_watch_line_granularity () =
  let m = mk () in
  let fired = ref 0 in
  Memsys.watch m ~addr:0x1000 (fun () -> incr fired);
  (* a store to another word of the same 64-byte line wakes watchers *)
  Memsys.commit_store m ~addr:0x1020 1L;
  check Alcotest.int "same line wakes" 1 !fired;
  Memsys.watch m ~addr:0x1000 (fun () -> incr fired);
  Memsys.commit_store m ~addr:0x2000 1L;
  check Alcotest.int "different line does not" 1 !fired

let test_watch_order () =
  let m = mk () in
  let log = ref [] in
  Memsys.watch m ~addr:0x1000 (fun () -> log := 1 :: !log);
  Memsys.watch m ~addr:0x1000 (fun () -> log := 2 :: !log);
  Memsys.commit_store m ~addr:0x1000 1L;
  check (Alcotest.list Alcotest.int) "registration order" [ 1; 2 ] (List.rev !log)

let test_counters () =
  let m = mk () in
  ignore (Memsys.read m ~now:0 ~core:0 ~addr:0x1000);
  ignore (Memsys.read m ~now:50 ~core:0 ~addr:0x1000);
  ignore (Memsys.read m ~now:100 ~core:8 ~addr:0x1000);
  let c = Memsys.counters m in
  check Alcotest.int "one dram fill" 1 c.Memsys.dram_fills;
  check Alcotest.int "one hit" 1 c.Memsys.hits;
  check Alcotest.int "one transfer" 1 c.Memsys.transfers;
  Memsys.reset_counters m;
  check Alcotest.int "reset" 0 (Memsys.counters m).Memsys.hits

let test_line_of () =
  check Alcotest.int "line math" (Memsys.line_of 0x1000) (Memsys.line_of 0x103F);
  check Alcotest.bool "next line differs" true
    (Memsys.line_of 0x1000 <> Memsys.line_of 0x1040)

let () =
  Alcotest.run "armb_mem"
    [
      ( "topology",
        [
          Alcotest.test_case "shape" `Quick test_topo_shape;
          Alcotest.test_case "distance" `Quick test_topo_distance;
          Alcotest.test_case "heterogeneous (big.LITTLE)" `Quick test_topo_heterogeneous;
          Alcotest.test_case "bounds checking" `Quick test_topo_bounds;
          Alcotest.test_case "wide topology" `Quick test_topo_wide;
          Alcotest.test_case "node listing" `Quick test_topo_node_listing;
        ] );
      ("latency", [ Alcotest.test_case "transfer" `Quick test_latency_transfer ]);
      ( "coherence",
        [
          Alcotest.test_case "read miss then hit" `Quick test_read_miss_then_hit;
          Alcotest.test_case "transfer distance" `Quick test_read_from_owner_distance;
          Alcotest.test_case "invalidation at drain finish" `Quick
            test_write_invalidates_sharers_at_finish;
          Alcotest.test_case "owned write cheap" `Quick test_write_own_line_cheap;
          Alcotest.test_case "pending-drain coalescing" `Quick test_write_coalesce_pending;
          Alcotest.test_case "line serialization" `Quick test_line_serialization;
          Alcotest.test_case "hit waits for in-flight fill" `Quick test_hit_waits_for_fill;
          Alcotest.test_case "sharer fetch waits for in-flight fill" `Quick
            test_sharer_fetch_waits_for_fill;
          Alcotest.test_case "owner read waits for late drain" `Quick
            test_owner_read_waits_for_late_drain;
          Alcotest.test_case "rmw surcharge" `Quick test_rmw_surcharge;
          Alcotest.test_case "extend_pending" `Quick test_extend_pending;
          QCheck_alcotest.to_alcotest prop_latency_bounds;
          QCheck_alcotest.to_alcotest prop_value_store;
        ] );
      ( "values-watches",
        [
          Alcotest.test_case "word values" `Quick test_values;
          Alcotest.test_case "watch fires once" `Quick test_watch_fires_once;
          Alcotest.test_case "watch line granularity" `Quick test_watch_line_granularity;
          Alcotest.test_case "watch order" `Quick test_watch_order;
          Alcotest.test_case "traffic counters" `Quick test_counters;
          Alcotest.test_case "line_of" `Quick test_line_of;
        ] );
    ]
