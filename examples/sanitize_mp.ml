(* The happens-before sanitizer on message passing, three ways: the racy
   version (no barriers — flagged, with a suggested fix), the properly
   fenced version (clean), and the Pilot version that packs data and flag
   into one 64-bit word so no barrier is needed at all (also clean).

   Run with:  dune exec examples/sanitize_mp.exe *)

module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Barrier = Armb_cpu.Barrier
module San = Armb_check.Sanitizer

let message_passing ~variant =
  let san = San.create () in
  let m =
    Machine.create ~observer:(San.observer san) Armb_platform.Platform.kunpeng916
  in
  let data = Machine.alloc_line m in
  let flag = Machine.alloc_line m in
  Armb_mem.Memsys.place (Machine.mem m) ~core:28 ~addr:data;
  Armb_mem.Memsys.place (Machine.mem m) ~core:0 ~addr:flag;
  (match variant with
  | `Racy ->
    Machine.spawn m ~core:0 (fun c ->
        Core.store c data 23L;
        Core.store c flag 1L);
    Machine.spawn m ~core:28 (fun c ->
        let f = Core.load c flag in
        let d = Core.load c data in
        ignore (Core.await c f);
        ignore (Core.await c d))
  | `Fenced ->
    Machine.spawn m ~core:0 (fun c ->
        Core.store c data 23L;
        Core.barrier c (Barrier.Dmb St);
        Core.store c flag 1L);
    Machine.spawn m ~core:28 (fun c ->
        ignore (Core.await c (Core.load c flag));
        Core.barrier c (Barrier.Dmb Ld);
        ignore (Core.await c (Core.load c data)))
  | `Pilot ->
    (* Flag rides in the payload word: single-copy atomicity orders it. *)
    Machine.spawn m ~core:0 (fun c -> Core.store c data 0x1_0000_0017L);
    Machine.spawn m ~core:28 (fun c -> ignore (Core.await c (Core.load c data))));
  Machine.run_exn m;
  San.findings san

let () =
  List.iter
    (fun (name, variant) ->
      match message_passing ~variant with
      | [] -> Format.printf "%-10s: clean@." name
      | fs ->
        Format.printf "%-10s: %d racy pair(s)@." name (List.length fs);
        List.iter (fun f -> Format.printf "%a@." San.pp_finding f) fs)
    [ ("racy MP", `Racy); ("fenced MP", `Fenced); ("Pilot MP", `Pilot) ]
